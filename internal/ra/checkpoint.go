package ra

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"paralagg/internal/mpi"
)

// Checkpoint/restart for the fixpoint. Every K iterations each rank
// snapshots the stratum's relations (FULL and Δ trees, accumulator,
// sub-bucket map, changed counts) through a pluggable sink; after a rank
// failure a fresh world reloads the latest agreed snapshot and re-runs to
// the identical fixpoint. The snapshot is rank-local (shards never cross
// the wire to checkpoint), so checkpointing adds no communication — only
// the serialization cost metered as metrics.PhaseCheckpoint.
//
// Sinks retain the last Keep generations per rank and validate every
// checkpoint they read: a corrupt newest generation is quarantined (renamed
// aside, or dropped for the memory sink) and recovery degrades by one
// generation instead of bricking. LatestValid is the recovery entry point —
// it names the newest generation for which EVERY rank of the writing world
// holds a checkpoint that passes validation.

// Checkpoint is one rank's saved fixpoint position: the stratum and the
// number of completed iterations, plus the serialized relation shards.
type Checkpoint struct {
	Ranks   int // world size at save time; a resume must match it
	Stratum int
	Iter    int // completed iterations; resume re-enters the loop here
	Words   []mpi.Word
	// SectionSums holds one ckptSum per length-prefixed relation section of
	// Words, written by the fixpoint's checkpoint pass. Sinks persist it as
	// the checkpoint's manifest and re-verify each section at load, so a
	// corrupt relation payload is named, not just detected. Empty means the
	// payload carries no section structure (whole-file validation only).
	SectionSums []uint64
	// SendSeqs and RecvSeqs are the per-peer wire frame counters captured at
	// the checkpoint-marks rendezvous (mpi.CheckpointMarks), len Ranks each.
	// They seed a hot-replacement transport so the replacement's frame
	// stream aligns with the incarnation it replaces. Empty on worlds not
	// running the replacement protocol; the on-disk format only grows the v3
	// header when they are present, so existing v2 files stay byte-stable.
	SendSeqs []uint64
	RecvSeqs []uint64
}

// CheckpointSink stores the most recent Keep checkpoint generations per
// rank. Implementations must be safe for concurrent use by all ranks of a
// world and must write atomically: a crash mid-save must leave every
// previous generation readable.
type CheckpointSink interface {
	Save(rank int, cp Checkpoint) error
	// Latest returns the newest checkpoint generation saved for rank that
	// passes validation, or ok=false if none does. Corrupt newer
	// generations are quarantined along the way.
	Latest(rank int) (cp Checkpoint, ok bool, err error)
	// LatestValid scans generations newest-first and returns the position
	// of the newest checkpoint set that is complete — every rank of the
	// writing world holds a validating checkpoint at it. ok=false with a
	// nil error means no such set exists.
	LatestValid() (pos Position, ok bool, err error)
	// Load returns rank's validated checkpoint at pos, or ok=false if the
	// rank holds no valid checkpoint there.
	Load(rank int, pos Position) (cp Checkpoint, ok bool, err error)
}

// Tamperer is the chaos harness's hook for deterministic checkpoint
// corruption: flip stored bits of rank's newest generation WITHOUT
// updating its checksums, so the next validation must reject it. Both
// bundled sinks implement it.
type Tamperer interface {
	TamperNewest(rank int) bool
}

// ErrNoCheckpoint reports a Resume attempt with an empty sink.
var ErrNoCheckpoint = errors.New("ra: no checkpoint to resume from")

// ErrCheckpointStorage reports a checkpoint save the storage layer refused
// even after freeing space: the device is full, a write came up short, or
// the rename/fsync failed. The partial file has been quarantined aside as
// path+".bad"; callers degrade (fall back to an in-memory sink, keep the
// run alive) instead of aborting.
type ErrCheckpointStorage struct {
	Path  string // the generation file the save was for
	Cause error  // the underlying storage error (first attempt's)
}

func (e *ErrCheckpointStorage) Error() string {
	return fmt.Sprintf("ra: checkpoint storage failed for %s: %v", e.Path, e.Cause)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *ErrCheckpointStorage) Unwrap() error { return e.Cause }

// AsCheckpointStorage extracts a structured storage failure from an error
// chain. It reports false for every other failure mode.
func AsCheckpointStorage(err error) (*ErrCheckpointStorage, bool) {
	var cs *ErrCheckpointStorage
	ok := errors.As(err, &cs)
	return cs, ok
}

// DefaultCheckpointKeep is the per-rank generation retention applied when a
// sink's Keep knob is unset.
const DefaultCheckpointKeep = 3

// Checkpoint-validation telemetry, shared by every sink in the process.
// The supervisor and /metrics surface these so silent corruption-and-
// fallback cycles stay visible.
var (
	ckptValidationFailures atomic.Int64
	ckptQuarantined        atomic.Int64
	ckptDegradations       atomic.Int64
)

// CheckpointIntegrityStats returns the process-wide cumulative counts of
// checkpoint validation failures and quarantined generations.
func CheckpointIntegrityStats() (validationFailures, quarantined int64) {
	return ckptValidationFailures.Load(), ckptQuarantined.Load()
}

// CheckpointDegradations returns the process-wide cumulative count of
// fixpoint runs that fell back to in-memory checkpointing after persistent
// storage failed.
func CheckpointDegradations() int64 { return ckptDegradations.Load() }

// countCkptDegradation records one storage-degradation fallback (called by
// the fixpoint driver when it swaps in the memory sink).
func countCkptDegradation() { ckptDegradations.Add(1) }

// effectiveKeep applies DefaultCheckpointKeep to an unset knob.
func effectiveKeep(keep int) int {
	if keep < 1 {
		return DefaultCheckpointKeep
	}
	return keep
}

// ckptSum mixes payload words into a checksum so bit rot or a partially
// written file is rejected at load instead of silently restoring garbage.
// It is also the per-section manifest digest.
func ckptSum(words []mpi.Word) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		h ^= uint64(w)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 31
	}
	return h
}

// SectionSum digests one relation's snapshot section for a Checkpoint
// manifest. Exported for engine-level snapshots (the serving engine builds
// checkpoints outside the fixpoint loop); the digest must match what
// verifySections re-derives at load time, i.e. ckptSum.
func SectionSum(words []mpi.Word) uint64 { return ckptSum(words) }

// verifySections re-derives each length-prefixed section's digest from the
// payload and compares against the manifest. A nil manifest skips the walk.
func verifySections(words []mpi.Word, sums []uint64) error {
	if len(sums) == 0 {
		return nil
	}
	rest := words
	for i, want := range sums {
		if len(rest) < 1 {
			return fmt.Errorf("payload ends before section %d of %d", i, len(sums))
		}
		n := int(rest[0])
		if n < 0 || len(rest) < 1+n {
			return fmt.Errorf("section %d of %d truncated (%d words declared, %d present)", i, len(sums), n, len(rest)-1)
		}
		if got := ckptSum(rest[1 : 1+n]); got != want {
			return fmt.Errorf("section %d of %d corrupt: digest %#x, manifest says %#x", i, len(sums), got, want)
		}
		rest = rest[1+n:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("%d trailing payload words beyond the %d manifest sections", len(rest), len(sums))
	}
	return nil
}

// MemoryCheckpointSink keeps checkpoint generations in process memory. It
// survives a world teardown (the crash/restart cycle the chaos harness
// exercises) but not a process restart — use FileCheckpointSink for that.
type MemoryCheckpointSink struct {
	mu   sync.Mutex
	keep int
	gens map[int][]memGen
}

// memGen is one retained in-memory generation: the checkpoint plus the
// save-time checksum validation recomputes against.
type memGen struct {
	cp  Checkpoint
	sum uint64
}

// NewMemoryCheckpointSink returns an empty in-memory sink retaining
// DefaultCheckpointKeep generations per rank.
func NewMemoryCheckpointSink() *MemoryCheckpointSink {
	return NewMemoryCheckpointSinkKeep(0)
}

// NewMemoryCheckpointSinkKeep returns an empty in-memory sink retaining
// keep generations per rank (< 1 means DefaultCheckpointKeep).
func NewMemoryCheckpointSinkKeep(keep int) *MemoryCheckpointSink {
	return &MemoryCheckpointSink{keep: effectiveKeep(keep), gens: map[int][]memGen{}}
}

// Save implements CheckpointSink.
func (s *MemoryCheckpointSink) Save(rank int, cp Checkpoint) error {
	cp.Words = append([]mpi.Word(nil), cp.Words...)
	cp.SectionSums = append([]uint64(nil), cp.SectionSums...)
	cp.SendSeqs = append([]uint64(nil), cp.SendSeqs...)
	cp.RecvSeqs = append([]uint64(nil), cp.RecvSeqs...)
	g := memGen{cp: cp, sum: ckptSum(cp.Words)}
	s.mu.Lock()
	gens := append(s.gens[rank], g)
	if over := len(gens) - s.keep; over > 0 {
		gens = append([]memGen(nil), gens[over:]...)
	}
	s.gens[rank] = gens
	s.mu.Unlock()
	return nil
}

// validAt re-validates generation i of rank under the lock, quarantining
// (dropping) it when its stored words no longer match the save-time
// checksum — the memory analogue of renaming a corrupt file aside.
func (s *MemoryCheckpointSink) validAt(rank, i int) bool {
	g := s.gens[rank][i]
	if ckptSum(g.cp.Words) == g.sum && verifySections(g.cp.Words, g.cp.SectionSums) == nil {
		return true
	}
	ckptValidationFailures.Add(1)
	ckptQuarantined.Add(1)
	s.gens[rank] = append(s.gens[rank][:i:i], s.gens[rank][i+1:]...)
	return false
}

// copyAt returns a caller-owned copy of generation i under the lock.
func (s *MemoryCheckpointSink) copyAt(rank, i int) Checkpoint {
	cp := s.gens[rank][i].cp
	cp.Words = append([]mpi.Word(nil), cp.Words...)
	cp.SectionSums = append([]uint64(nil), cp.SectionSums...)
	cp.SendSeqs = append([]uint64(nil), cp.SendSeqs...)
	cp.RecvSeqs = append([]uint64(nil), cp.RecvSeqs...)
	return cp
}

// Latest implements CheckpointSink.
func (s *MemoryCheckpointSink) Latest(rank int) (Checkpoint, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.gens[rank]) - 1; i >= 0; i-- {
		if s.validAt(rank, i) {
			return s.copyAt(rank, i), true, nil
		}
	}
	return Checkpoint{}, false, nil
}

// LatestValid implements CheckpointSink.
func (s *MemoryCheckpointSink) LatestValid() (Position, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.gens[0]) - 1; i >= 0; i-- {
		if !s.validAt(0, i) {
			continue
		}
		cp := s.gens[0][i].cp
		pos := Position{Ranks: cp.Ranks, Stratum: cp.Stratum, Iter: cp.Iter}
		complete := true
		for r := 1; r < pos.Ranks; r++ {
			if _, ok := s.loadLocked(r, pos); !ok {
				complete = false
				break
			}
		}
		if complete {
			return pos, true, nil
		}
	}
	return Position{}, false, nil
}

// loadLocked finds rank's newest valid generation matching pos.
func (s *MemoryCheckpointSink) loadLocked(rank int, pos Position) (int, bool) {
	for i := len(s.gens[rank]) - 1; i >= 0; i-- {
		if !pos.Matches(s.gens[rank][i].cp) {
			continue
		}
		if s.validAt(rank, i) {
			return i, true
		}
		// validAt dropped entry i; indexes above it shifted down by one,
		// but those were already visited, so continue from i-1 unharmed.
	}
	return 0, false
}

// Load implements CheckpointSink.
func (s *MemoryCheckpointSink) Load(rank int, pos Position) (Checkpoint, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.loadLocked(rank, pos); ok {
		return s.copyAt(rank, i), true, nil
	}
	return Checkpoint{}, false, nil
}

// TamperNewest implements Tamperer: it flips one payload word of rank's
// newest stored generation without touching the save-time checksum, so the
// next validation quarantines it.
func (s *MemoryCheckpointSink) TamperNewest(rank int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	gens := s.gens[rank]
	if len(gens) == 0 {
		return false
	}
	w := gens[len(gens)-1].cp.Words
	if len(w) == 0 {
		return false
	}
	w[len(w)/2] ^= 1 << 17
	return true
}

// FileCheckpointSink persists checkpoint generations under Dir — one
// rank-%04d.gen-%06d.ckpt file per save, the last Keep generations per
// rank retained — surviving process restarts (the CLI's -resume flag).
// Saves write a temporary file, fsync it, rename it into place, and fsync
// the directory, so an interrupted save never clobbers a previous
// generation and a completed save survives power loss. Files written by
// the previous single-generation format (rank-%04d.ckpt) load as the
// oldest generation.
type FileCheckpointSink struct {
	Dir string
	// Keep bounds the retained generations per rank; < 1 means
	// DefaultCheckpointKeep.
	Keep int
}

const (
	ckptMagic     uint64 = 0x70614c43_6b707432 // "paLCkpt2": legacy single-generation format
	ckptMagicV2   uint64 = 0x70614c43_6b707433 // "paLCkpt3": versioned manifest format
	ckptMagicV3   uint64 = 0x70614c43_6b707434 // "paLCkpt4": manifest + wire-mark format
	ckptVersion   uint64 = 2
	ckptVersionV3 uint64 = 3
)

// ckptHeaderWords is the fixed prefix of a legacy checkpoint file: magic,
// world size, stratum, iteration, payload checksum, payload length.
const ckptHeaderWords = 6

// ckptV2HeaderWords is the fixed prefix of a v2 file: magic, format
// version, world size, stratum, iteration, section count. The manifest
// (one digest word per section), the payload length, the payload, and a
// trailing whole-file CRC32C word follow.
const ckptV2HeaderWords = 6

// legacyGen orders pre-versioning rank-%04d.ckpt files before every
// numbered generation.
const legacyGen = -1

func (s FileCheckpointSink) path(rank, gen int) string {
	if gen == legacyGen {
		return filepath.Join(s.Dir, fmt.Sprintf("rank-%04d.ckpt", rank))
	}
	return filepath.Join(s.Dir, fmt.Sprintf("rank-%04d.gen-%06d.ckpt", rank, gen))
}

// rankGens lists rank's on-disk generations sorted oldest-first (a legacy
// file, if present, sorts before every numbered generation). A missing
// directory is an empty sink, not an error.
func (s FileCheckpointSink) rankGens(rank int) ([]int, error) {
	ents, err := os.ReadDir(s.Dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var gens []int
	for _, e := range ents {
		if e.Name() == filepath.Base(s.path(rank, legacyGen)) {
			gens = append(gens, legacyGen)
			continue
		}
		var r, g int
		if n, _ := fmt.Sscanf(e.Name(), "rank-%d.gen-%d.ckpt", &r, &g); n == 2 &&
			r == rank && g >= 0 && e.Name() == filepath.Base(s.path(rank, g)) {
			gens = append(gens, g)
		}
	}
	sort.Ints(gens)
	return gens, nil
}

// encodeCkpt renders cp in the v2 format — header, manifest, payload, and a
// trailing CRC32C over every preceding byte — or, when wire marks are
// present, the v3 format that inserts a marks block (count word, SendSeqs,
// RecvSeqs) between the header and the manifest. Mark-free checkpoints stay
// byte-identical to what every earlier build wrote.
func encodeCkpt(cp Checkpoint) []byte {
	ns := len(cp.SectionSums)
	nm := len(cp.SendSeqs)
	magic, version, marksWords := ckptMagicV2, ckptVersion, 0
	if nm > 0 {
		magic, version, marksWords = ckptMagicV3, ckptVersionV3, 1+2*nm
	}
	buf := make([]byte, 8*(ckptV2HeaderWords+marksWords+ns+1+len(cp.Words)+1))
	binary.LittleEndian.PutUint64(buf[0:], magic)
	binary.LittleEndian.PutUint64(buf[8:], version)
	binary.LittleEndian.PutUint64(buf[16:], uint64(cp.Ranks))
	binary.LittleEndian.PutUint64(buf[24:], uint64(cp.Stratum))
	binary.LittleEndian.PutUint64(buf[32:], uint64(cp.Iter))
	binary.LittleEndian.PutUint64(buf[40:], uint64(ns))
	off := 8 * ckptV2HeaderWords
	if nm > 0 {
		binary.LittleEndian.PutUint64(buf[off:], uint64(nm))
		off += 8
		for _, v := range cp.SendSeqs {
			binary.LittleEndian.PutUint64(buf[off:], v)
			off += 8
		}
		for _, v := range cp.RecvSeqs {
			binary.LittleEndian.PutUint64(buf[off:], v)
			off += 8
		}
	}
	for _, sum := range cp.SectionSums {
		binary.LittleEndian.PutUint64(buf[off:], sum)
		off += 8
	}
	binary.LittleEndian.PutUint64(buf[off:], uint64(len(cp.Words)))
	off += 8
	for _, w := range cp.Words {
		binary.LittleEndian.PutUint64(buf[off:], uint64(w))
		off += 8
	}
	binary.LittleEndian.PutUint64(buf[off:], uint64(mpi.CRC32C(buf[:off])))
	return buf
}

// decodeCkpt parses and fully validates a checkpoint file of either
// format. Every error return means the file is corrupt or foreign.
func decodeCkpt(path string, buf []byte) (Checkpoint, error) {
	if len(buf) < 8 {
		return Checkpoint{}, fmt.Errorf("ra: %s is not a checkpoint file", path)
	}
	wantVersion := ckptVersion
	switch binary.LittleEndian.Uint64(buf) {
	case ckptMagic:
		return decodeLegacyCkpt(path, buf)
	case ckptMagicV2:
	case ckptMagicV3:
		wantVersion = ckptVersionV3
	default:
		return Checkpoint{}, fmt.Errorf("ra: %s is not a checkpoint file", path)
	}
	if len(buf) < 8*(ckptV2HeaderWords+2) {
		return Checkpoint{}, fmt.Errorf("ra: %s truncated inside the header", path)
	}
	if v := binary.LittleEndian.Uint64(buf[8:]); v != wantVersion {
		return Checkpoint{}, fmt.Errorf("ra: %s has checkpoint format version %d, this build reads %d", path, v, wantVersion)
	}
	cp := Checkpoint{
		Ranks:   int(binary.LittleEndian.Uint64(buf[16:])),
		Stratum: int(binary.LittleEndian.Uint64(buf[24:])),
		Iter:    int(binary.LittleEndian.Uint64(buf[32:])),
	}
	ns := int(binary.LittleEndian.Uint64(buf[40:]))
	off := 8 * ckptV2HeaderWords
	if wantVersion == ckptVersionV3 {
		if len(buf) < off+8*2 {
			return Checkpoint{}, fmt.Errorf("ra: %s truncated inside the marks block", path)
		}
		nm := int(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		if nm <= 0 || len(buf) < off+8*(2*nm+1) {
			return Checkpoint{}, fmt.Errorf("ra: %s truncated inside the marks block (%d marks declared)", path, nm)
		}
		cp.SendSeqs = make([]uint64, nm)
		cp.RecvSeqs = make([]uint64, nm)
		for i := range cp.SendSeqs {
			cp.SendSeqs[i] = binary.LittleEndian.Uint64(buf[off:])
			off += 8
		}
		for i := range cp.RecvSeqs {
			cp.RecvSeqs[i] = binary.LittleEndian.Uint64(buf[off:])
			off += 8
		}
	}
	if ns < 0 || len(buf) < off+8*(ns+1) {
		return Checkpoint{}, fmt.Errorf("ra: %s truncated inside the manifest (%d sections declared)", path, ns)
	}
	if ns > 0 {
		cp.SectionSums = make([]uint64, ns)
		for i := range cp.SectionSums {
			cp.SectionSums[i] = binary.LittleEndian.Uint64(buf[off:])
			off += 8
		}
	}
	n := int(binary.LittleEndian.Uint64(buf[off:]))
	off += 8
	if n < 0 || len(buf) != off+8*(n+1) {
		return Checkpoint{}, fmt.Errorf("ra: %s truncated: %d payload words declared, %d bytes present", path, n, len(buf))
	}
	cp.Words = make([]mpi.Word, n)
	for i := range cp.Words {
		cp.Words[i] = binary.LittleEndian.Uint64(buf[off:])
		off += 8
	}
	want := uint32(binary.LittleEndian.Uint64(buf[off:]))
	if got := mpi.CRC32C(buf[:off]); got != want {
		return Checkpoint{}, fmt.Errorf("ra: %s corrupt: file CRC %#x, trailer says %#x", path, got, want)
	}
	if err := verifySections(cp.Words, cp.SectionSums); err != nil {
		return Checkpoint{}, fmt.Errorf("ra: %s corrupt: %v", path, err)
	}
	return cp, nil
}

// decodeLegacyCkpt parses the pre-versioning single-generation format.
func decodeLegacyCkpt(path string, buf []byte) (Checkpoint, error) {
	if len(buf) < 8*ckptHeaderWords {
		return Checkpoint{}, fmt.Errorf("ra: %s is not a checkpoint file", path)
	}
	cp := Checkpoint{
		Ranks:   int(binary.LittleEndian.Uint64(buf[8:])),
		Stratum: int(binary.LittleEndian.Uint64(buf[16:])),
		Iter:    int(binary.LittleEndian.Uint64(buf[24:])),
	}
	sum := binary.LittleEndian.Uint64(buf[32:])
	n := int(binary.LittleEndian.Uint64(buf[40:]))
	if len(buf) != 8*(ckptHeaderWords+n) {
		return Checkpoint{}, fmt.Errorf("ra: %s truncated: %d words declared, %d bytes present", path, n, len(buf))
	}
	cp.Words = make([]mpi.Word, n)
	for i := range cp.Words {
		cp.Words[i] = binary.LittleEndian.Uint64(buf[8*(ckptHeaderWords+i):])
	}
	if got := ckptSum(cp.Words); got != sum {
		return Checkpoint{}, fmt.Errorf("ra: %s corrupt: payload checksum %#x, header says %#x", path, got, sum)
	}
	return cp, nil
}

// loadGen reads and validates one generation. A fs.ErrNotExist return
// means the file vanished under a concurrent prune or quarantine — the
// caller skips it without counting a validation failure.
func (s FileCheckpointSink) loadGen(rank, gen int) (Checkpoint, error) {
	path := s.path(rank, gen)
	buf, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, err
	}
	return decodeCkpt(path, buf)
}

// quarantine renames a corrupt generation aside (path + ".bad") so it is
// never retried, preserving the bytes for inspection. Concurrent scans may
// race to the rename; only the winner counts the quarantine.
func (s FileCheckpointSink) quarantine(rank, gen int) {
	ckptValidationFailures.Add(1)
	p := s.path(rank, gen)
	if err := os.Rename(p, p+".bad"); err == nil {
		ckptQuarantined.Add(1)
	}
}

// Save implements CheckpointSink: encode, write a temp file, fsync it,
// rename it into the next generation slot, fsync the directory, and prune
// generations beyond Keep. A storage failure (ENOSPC, short write, IO
// error) quarantines the partial file, frees space by pruning old
// generations down to the newest, and retries once; a second failure
// surfaces as *ErrCheckpointStorage so the caller can degrade instead of
// aborting the run.
func (s FileCheckpointSink) Save(rank int, cp Checkpoint) error {
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return &ErrCheckpointStorage{Path: s.Dir, Cause: err}
	}
	gens, err := s.rankGens(rank)
	if err != nil {
		return err
	}
	gen := 1
	if len(gens) > 0 && gens[len(gens)-1] >= 1 {
		gen = gens[len(gens)-1] + 1
	}
	final := s.path(rank, gen)
	data := encodeCkpt(cp)
	werr := s.writeGen(final, data)
	if werr == nil {
		return s.pruneGens(rank, gens, effectiveKeep(s.Keep)-1)
	}
	s.pruneGens(rank, gens, 1) // free space: keep only the newest old generation
	if s.writeGen(final, data) == nil {
		return nil
	}
	return &ErrCheckpointStorage{Path: final, Cause: werr}
}

// writeGen writes one generation durably: temp file, fsync, rename into
// place, fsync the directory. On failure the partial file is quarantined to
// final+".bad" (never left where a scan could mistake it for a checkpoint),
// or removed if even the rename fails.
func (s FileCheckpointSink) writeGen(final string, data []byte) error {
	tmp := final + ".tmp"
	err := writeFileSync(tmp, data)
	if err == nil {
		if err = os.Rename(tmp, final); err == nil {
			if err = syncDir(s.Dir); err == nil {
				return nil
			}
			// The rename landed but is not durable: quarantine the
			// generation like any other partial.
			tmp = final
		}
	}
	if rerr := os.Rename(tmp, final+".bad"); rerr == nil {
		ckptQuarantined.Add(1)
	} else {
		os.Remove(tmp)
	}
	return err
}

// pruneGens removes rank's oldest on-disk generations so at most keepN of
// the listed ones remain. Already-vanished files are fine (a concurrent
// scan may have quarantined them). Quarantine files (.bad) older than the
// oldest retained generation are removed too: a quarantined generation no
// longer appears in gens, so without this sweep its .bad husk would escape
// keep-K retention and accumulate forever in long supervised runs.
func (s FileCheckpointSink) pruneGens(rank int, gens []int, keepN int) error {
	over := len(gens) - keepN
	if over > 0 {
		for _, g := range gens[:over] {
			if err := os.Remove(s.path(rank, g)); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return err
			}
		}
	}
	if len(gens) > 0 {
		floor := gens[0]
		if over > 0 {
			floor = gens[over]
		}
		s.pruneBad(rank, floor)
	}
	return nil
}

// pruneBad removes rank's quarantined generation files (.bad) older than
// floor, the oldest generation retention still keeps. Newer quarantines are
// preserved for inspection exactly as long as a healthy sibling would be.
func (s FileCheckpointSink) pruneBad(rank, floor int) {
	ents, err := os.ReadDir(s.Dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		var r, g int
		if n, _ := fmt.Sscanf(e.Name(), "rank-%d.gen-%d.ckpt.bad", &r, &g); n == 2 &&
			r == rank && g >= 0 && g < floor &&
			e.Name() == filepath.Base(s.path(rank, g))+".bad" {
			os.Remove(filepath.Join(s.Dir, e.Name()))
		}
	}
}

// ckptFile is the handle writeFileSync writes through.
type ckptFile interface {
	io.Writer
	Sync() error
	Close() error
}

// openCkptFile creates the temp file a save writes to. A package variable
// so tests can inject storage failures (ENOSPC, short writes) into the
// exact path a full device would fail on.
var openCkptFile = func(path string) (ckptFile, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

// writeFileSync writes data to path and fsyncs it before closing, so the
// bytes are durable before the caller renames the file into place. A write
// accepted short (a full device that lies) is surfaced as io.ErrShortWrite.
func writeFileSync(path string, data []byte) error {
	f, err := openCkptFile(path)
	if err != nil {
		return err
	}
	n, err := f.Write(data)
	if err == nil && n < len(data) {
		err = io.ErrShortWrite
	}
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable before Save reports success.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Latest implements CheckpointSink: newest-first over rank's generations,
// quarantining corrupt ones, returning the first that validates.
func (s FileCheckpointSink) Latest(rank int) (Checkpoint, bool, error) {
	gens, err := s.rankGens(rank)
	if err != nil {
		return Checkpoint{}, false, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		cp, err := s.loadGen(rank, gens[i])
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			s.quarantine(rank, gens[i])
			continue
		}
		return cp, true, nil
	}
	return Checkpoint{}, false, nil
}

// LatestValid implements CheckpointSink. Rank 0 belongs to every world, so
// its generations enumerate the candidate positions; each candidate is
// accepted only when every rank of the writing world holds a validating
// checkpoint at it.
func (s FileCheckpointSink) LatestValid() (Position, bool, error) {
	gens, err := s.rankGens(0)
	if err != nil {
		return Position{}, false, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		cp, err := s.loadGen(0, gens[i])
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			s.quarantine(0, gens[i])
			continue
		}
		pos := Position{Ranks: cp.Ranks, Stratum: cp.Stratum, Iter: cp.Iter}
		complete := true
		for r := 1; r < pos.Ranks; r++ {
			if _, ok, err := s.Load(r, pos); err != nil || !ok {
				complete = false
				break
			}
		}
		if complete {
			return pos, true, nil
		}
	}
	return Position{}, false, nil
}

// Load implements CheckpointSink: newest-first over rank's generations,
// quarantining corrupt ones, returning the first valid checkpoint at pos.
func (s FileCheckpointSink) Load(rank int, pos Position) (Checkpoint, bool, error) {
	gens, err := s.rankGens(rank)
	if err != nil {
		return Checkpoint{}, false, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		cp, err := s.loadGen(rank, gens[i])
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			s.quarantine(rank, gens[i])
			continue
		}
		if pos.Matches(cp) {
			return cp, true, nil
		}
	}
	return Checkpoint{}, false, nil
}

// TamperNewest implements Tamperer: flip one byte of the final payload
// word of rank's newest on-disk generation, in place and without updating
// any checksum, so validation must reject it. (The very last word is the
// v2 CRC trailer whose upper bytes are zero padding; the word before it is
// always covered by a checksum in both formats.)
func (s FileCheckpointSink) TamperNewest(rank int) bool {
	gens, err := s.rankGens(rank)
	if err != nil || len(gens) == 0 {
		return false
	}
	p := s.path(rank, gens[len(gens)-1])
	buf, err := os.ReadFile(p)
	if err != nil || len(buf) < 16 {
		return false
	}
	buf[len(buf)-9] ^= 0x40
	return os.WriteFile(p, buf, 0o644) == nil
}

// Remove deletes every generation, temp, and quarantine file of rank (used
// by the CLI to clear stale state after a completed run).
func (s FileCheckpointSink) Remove(rank int) error {
	ents, err := os.ReadDir(s.Dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	prefix := fmt.Sprintf("rank-%04d.", rank)
	for _, e := range ents {
		if len(e.Name()) < len(prefix) || e.Name()[:len(prefix)] != prefix {
			continue
		}
		err := os.Remove(filepath.Join(s.Dir, e.Name()))
		if err != nil && !errors.Is(err, fs.ErrNotExist) && err != io.EOF {
			return err
		}
	}
	return nil
}

// Sentinel position words for the collective checkpoint agreement.
const (
	posNone = uint64(math.MaxUint64)     // this rank sees no checkpoint
	posErr  = uint64(math.MaxUint64) - 1 // this rank's sink failed to read
)

// posWord packs a checkpoint's coordinate into one agreement word. World
// size rides along so every rank makes the same accept/reject/remap
// decision even from tampered-with sinks.
func posWord(ranks, stratum, iter int) uint64 {
	return uint64(ranks)<<48 | uint64(stratum)<<32 | uint64(iter)
}

// Position identifies a checkpoint set: the world size that wrote it and
// the (stratum, iteration) coordinate it captured.
type Position struct {
	Ranks   int
	Stratum int
	Iter    int
}

// Matches reports whether a checkpoint belongs to the position.
func (p Position) Matches(cp Checkpoint) bool {
	return cp.Ranks == p.Ranks && cp.Stratum == p.Stratum && cp.Iter == p.Iter
}

// agree collectively verifies that every rank computed the same position
// word, returning the unanimous word. A mismatch — heterogeneous snapshots,
// or one rank's sink failing — is an error on every rank, because ranks
// restarting from different positions would silently diverge.
func agree(comm *mpi.Comm, pos uint64) (uint64, error) {
	lo := comm.Allreduce(pos, mpi.OpMin)
	hi := comm.Allreduce(pos, mpi.OpMax)
	if hi == posErr || (hi == posNone && lo != posNone) {
		// posErr and posNone sort above every real position, so hi carries
		// them: a rank whose sink read failed, or one seeing no checkpoint
		// while others do (a torn set).
		return 0, fmt.Errorf(
			"ra: checkpoint unreadable or missing on some rank (rank %d reads %s)",
			comm.Rank(), describePos(pos))
	}
	if lo != hi {
		return 0, fmt.Errorf(
			"ra: checkpoint mismatch across ranks: positions range from %#x to %#x (rank %d has %#x)",
			lo, hi, comm.Rank(), pos)
	}
	return lo, nil
}

// describePos renders an agreement word for error messages.
func describePos(pos uint64) string {
	switch pos {
	case posErr:
		return "a corrupt or unreadable checkpoint"
	case posNone:
		return "no checkpoint"
	default:
		return fmt.Sprintf("position %#x", pos)
	}
}

// agreeOutcome makes a local restore error collective: if any rank failed,
// every rank returns an error instead of sailing into the next collective
// without its peers.
func agreeOutcome(comm *mpi.Comm, local error) error {
	bad := uint64(0)
	if local != nil {
		bad = 1
	}
	if comm.Allreduce(bad, mpi.OpMax) == 0 {
		return nil
	}
	if local != nil {
		return local
	}
	return errors.New("ra: a peer rank failed restoring the checkpoint")
}

// AgreedPosition scans the sink for the newest valid complete checkpoint
// set and collectively verifies every rank of the current world observes
// the same position. ok=false with a nil error means no valid checkpoint
// exists anywhere. Collective.
func AgreedPosition(comm *mpi.Comm, sink CheckpointSink) (Position, bool, error) {
	p, ok, err := sink.LatestValid()
	pos := posNone
	switch {
	case err != nil:
		pos = posErr // poison the agreement so peers error rather than diverge
	case ok:
		pos = posWord(p.Ranks, p.Stratum, p.Iter)
	}
	agreed, aerr := agree(comm, pos)
	if err != nil {
		return Position{}, false, err
	}
	if aerr != nil {
		return Position{}, false, aerr
	}
	if agreed == posNone {
		return Position{}, false, nil
	}
	return p, true, nil
}

// LatestAgreed resolves the newest valid complete checkpoint set,
// collectively verifies every rank observes the same position written by a
// world of this size, and loads this rank's own shard. It is the same-size
// fast path: each rank's restore touches only its own generation files.
// Use AgreedPosition + CollectRemap when the world size may have changed.
// ok=false (with a nil error) means no valid checkpoint set exists.
func LatestAgreed(comm *mpi.Comm, sink CheckpointSink) (Checkpoint, bool, error) {
	pos, ok, err := AgreedPosition(comm, sink)
	if err != nil {
		return Checkpoint{}, false, err
	}
	if !ok {
		return Checkpoint{}, false, nil
	}
	if pos.Ranks != comm.Size() {
		return Checkpoint{}, false, fmt.Errorf(
			"ra: checkpoint was written by a %d-rank world, cannot same-size resume with %d ranks (use the remap path)",
			pos.Ranks, comm.Size())
	}
	cp, ok, lerr := sink.Load(comm.Rank(), pos)
	if lerr == nil && !ok {
		lerr = fmt.Errorf("ra: rank %d's checkpoint at the agreed position vanished mid-resume", comm.Rank())
	}
	if err := agreeOutcome(comm, lerr); err != nil {
		return Checkpoint{}, false, err
	}
	return cp, true, nil
}

// PeekRejoin reads rank's newest valid checkpoint without any collective
// agreement: the hot-replacement entry point. A replacement process must
// seed its transport's frame counters from the checkpoint's wire marks
// BEFORE the transport (and hence any collective) exists, so the read is
// strictly rank-local; the survivors' retained state, not an agreement
// protocol, guarantees the generation is the one the gang checkpointed.
// ok=false with a nil error means the rank holds no valid checkpoint.
func PeekRejoin(sink CheckpointSink, rank int) (Checkpoint, bool, error) {
	cp, ok, err := sink.Latest(rank)
	if err != nil || !ok {
		return Checkpoint{}, false, err
	}
	if len(cp.SendSeqs) != cp.Ranks || len(cp.RecvSeqs) != cp.Ranks {
		return Checkpoint{}, false, fmt.Errorf(
			"ra: rank %d's checkpoint carries no wire marks (saved without hot replacement enabled)", rank)
	}
	return cp, true, nil
}

// CollectRemap loads the complete checkpoint set of an agreed position —
// one checkpoint per original rank — validating each against the position.
// It is rank-local (every rank reads the whole set; a remap restore needs
// the union anyway) and reports errors locally; callers must funnel the
// outcome through a collective agreement before the next collective op.
func CollectRemap(sink CheckpointSink, pos Position) ([]Checkpoint, error) {
	cps := make([]Checkpoint, pos.Ranks)
	for r := 0; r < pos.Ranks; r++ {
		cp, ok, err := sink.Load(r, pos)
		if err != nil {
			return nil, fmt.Errorf("ra: reading original rank %d's checkpoint for remap: %w", r, err)
		}
		if !ok {
			return nil, fmt.Errorf(
				"ra: original rank %d holds no valid checkpoint at (ranks %d, stratum %d, iter %d): torn checkpoint set",
				r, pos.Ranks, pos.Stratum, pos.Iter)
		}
		cps[r] = cp
	}
	return cps, nil
}
