package ra

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"

	"paralagg/internal/mpi"
)

// Checkpoint/restart for the fixpoint. Every K iterations each rank
// snapshots the stratum's relations (FULL and Δ trees, accumulator,
// sub-bucket map, changed counts) through a pluggable sink; after a rank
// failure a fresh world reloads the latest agreed snapshot and re-runs to
// the identical fixpoint. The snapshot is rank-local (shards never cross
// the wire to checkpoint), so checkpointing adds no communication — only
// the serialization cost metered as metrics.PhaseCheckpoint.

// Checkpoint is one rank's saved fixpoint position: the stratum and the
// number of completed iterations, plus the serialized relation shards.
type Checkpoint struct {
	Ranks   int // world size at save time; a resume must match it
	Stratum int
	Iter    int // completed iterations; resume re-enters the loop here
	Words   []mpi.Word
}

// CheckpointSink stores one latest checkpoint per rank. Implementations
// must be safe for concurrent use by all ranks of a world and must
// overwrite atomically: a crash mid-save must leave the previous checkpoint
// readable.
type CheckpointSink interface {
	Save(rank int, cp Checkpoint) error
	// Latest returns the most recent checkpoint saved for rank, or ok=false
	// if none exists.
	Latest(rank int) (cp Checkpoint, ok bool, err error)
}

// ErrNoCheckpoint reports a Resume attempt with an empty sink.
var ErrNoCheckpoint = errors.New("ra: no checkpoint to resume from")

// MemoryCheckpointSink keeps checkpoints in process memory. It survives a
// world teardown (the crash/restart cycle the chaos harness exercises) but
// not a process restart — use FileCheckpointSink for that.
type MemoryCheckpointSink struct {
	mu   sync.Mutex
	byRk map[int]Checkpoint
}

// NewMemoryCheckpointSink returns an empty in-memory sink.
func NewMemoryCheckpointSink() *MemoryCheckpointSink {
	return &MemoryCheckpointSink{byRk: make(map[int]Checkpoint)}
}

// Save implements CheckpointSink.
func (s *MemoryCheckpointSink) Save(rank int, cp Checkpoint) error {
	cp.Words = append([]mpi.Word(nil), cp.Words...)
	s.mu.Lock()
	s.byRk[rank] = cp
	s.mu.Unlock()
	return nil
}

// Latest implements CheckpointSink.
func (s *MemoryCheckpointSink) Latest(rank int) (Checkpoint, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp, ok := s.byRk[rank]
	if !ok {
		return Checkpoint{}, false, nil
	}
	cp.Words = append([]mpi.Word(nil), cp.Words...)
	return cp, true, nil
}

// FileCheckpointSink persists one checkpoint file per rank under Dir,
// surviving process restarts (the CLI's -resume flag). Saves write a
// temporary file and rename it into place, so an interrupted save never
// clobbers the previous checkpoint.
type FileCheckpointSink struct{ Dir string }

const ckptMagic uint64 = 0x70614c43_6b707432 // "paLCkpt2"

// ckptHeaderWords is the fixed prefix of a checkpoint file: magic, world
// size, stratum, iteration, payload checksum, payload length.
const ckptHeaderWords = 6

// ckptSum mixes the payload words into a checksum so bit rot or a partially
// written file is rejected at load instead of silently restoring garbage.
func ckptSum(words []mpi.Word) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		h ^= uint64(w)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 31
	}
	return h
}

func (s FileCheckpointSink) path(rank int) string {
	return filepath.Join(s.Dir, fmt.Sprintf("rank-%04d.ckpt", rank))
}

// Save implements CheckpointSink.
func (s FileCheckpointSink) Save(rank int, cp Checkpoint) error {
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return err
	}
	buf := make([]byte, 8*(ckptHeaderWords+len(cp.Words)))
	binary.LittleEndian.PutUint64(buf[0:], ckptMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(cp.Ranks))
	binary.LittleEndian.PutUint64(buf[16:], uint64(cp.Stratum))
	binary.LittleEndian.PutUint64(buf[24:], uint64(cp.Iter))
	binary.LittleEndian.PutUint64(buf[32:], ckptSum(cp.Words))
	binary.LittleEndian.PutUint64(buf[40:], uint64(len(cp.Words)))
	for i, w := range cp.Words {
		binary.LittleEndian.PutUint64(buf[8*(ckptHeaderWords+i):], w)
	}
	tmp := s.path(rank) + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.path(rank))
}

// Latest implements CheckpointSink.
func (s FileCheckpointSink) Latest(rank int) (Checkpoint, bool, error) {
	buf, err := os.ReadFile(s.path(rank))
	if errors.Is(err, os.ErrNotExist) {
		return Checkpoint{}, false, nil
	}
	if err != nil {
		return Checkpoint{}, false, err
	}
	if len(buf) < 8*ckptHeaderWords || binary.LittleEndian.Uint64(buf) != ckptMagic {
		return Checkpoint{}, false, fmt.Errorf("ra: %s is not a checkpoint file", s.path(rank))
	}
	cp := Checkpoint{
		Ranks:   int(binary.LittleEndian.Uint64(buf[8:])),
		Stratum: int(binary.LittleEndian.Uint64(buf[16:])),
		Iter:    int(binary.LittleEndian.Uint64(buf[24:])),
	}
	sum := binary.LittleEndian.Uint64(buf[32:])
	n := int(binary.LittleEndian.Uint64(buf[40:]))
	if len(buf) != 8*(ckptHeaderWords+n) {
		return Checkpoint{}, false, fmt.Errorf("ra: %s truncated: %d words declared, %d bytes present",
			s.path(rank), n, len(buf))
	}
	cp.Words = make([]mpi.Word, n)
	for i := range cp.Words {
		cp.Words[i] = binary.LittleEndian.Uint64(buf[8*(ckptHeaderWords+i):])
	}
	if got := ckptSum(cp.Words); got != sum {
		return Checkpoint{}, false, fmt.Errorf("ra: %s corrupt: payload checksum %#x, header says %#x",
			s.path(rank), got, sum)
	}
	return cp, true, nil
}

// Remove deletes rank's checkpoint file if present (used by the CLI to
// clear stale state after a completed run).
func (s FileCheckpointSink) Remove(rank int) error {
	err := os.Remove(s.path(rank))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err == io.EOF {
		return nil
	}
	return err
}

// Sentinel position words for the collective checkpoint agreement.
const (
	posNone = uint64(math.MaxUint64)     // this rank sees no checkpoint
	posErr  = uint64(math.MaxUint64) - 1 // this rank's sink failed to read
)

// posWord packs a checkpoint's coordinate into one agreement word. World
// size rides along so every rank makes the same accept/reject/remap
// decision even from tampered-with sinks.
func posWord(ranks, stratum, iter int) uint64 {
	return uint64(ranks)<<48 | uint64(stratum)<<32 | uint64(iter)
}

// Position identifies a checkpoint set: the world size that wrote it and
// the (stratum, iteration) coordinate it captured.
type Position struct {
	Ranks   int
	Stratum int
	Iter    int
}

// Matches reports whether a checkpoint belongs to the position.
func (p Position) Matches(cp Checkpoint) bool {
	return cp.Ranks == p.Ranks && cp.Stratum == p.Stratum && cp.Iter == p.Iter
}

// agree collectively verifies that every rank computed the same position
// word, returning the unanimous word. A mismatch — heterogeneous snapshots,
// or one rank's sink failing — is an error on every rank, because ranks
// restarting from different positions would silently diverge.
func agree(comm *mpi.Comm, pos uint64) (uint64, error) {
	lo := comm.Allreduce(pos, mpi.OpMin)
	hi := comm.Allreduce(pos, mpi.OpMax)
	if hi == posErr || (hi == posNone && lo != posNone) {
		// posErr and posNone sort above every real position, so hi carries
		// them: a rank whose sink read failed, or one seeing no checkpoint
		// while others do (a torn set).
		return 0, fmt.Errorf(
			"ra: checkpoint unreadable or missing on some rank (rank %d reads %s)",
			comm.Rank(), describePos(pos))
	}
	if lo != hi {
		return 0, fmt.Errorf(
			"ra: checkpoint mismatch across ranks: positions range from %#x to %#x (rank %d has %#x)",
			lo, hi, comm.Rank(), pos)
	}
	return lo, nil
}

// describePos renders an agreement word for error messages.
func describePos(pos uint64) string {
	switch pos {
	case posErr:
		return "a corrupt or unreadable checkpoint"
	case posNone:
		return "no checkpoint"
	default:
		return fmt.Sprintf("position %#x", pos)
	}
}

// agreeOutcome makes a local restore error collective: if any rank failed,
// every rank returns an error instead of sailing into the next collective
// without its peers.
func agreeOutcome(comm *mpi.Comm, local error) error {
	bad := uint64(0)
	if local != nil {
		bad = 1
	}
	if comm.Allreduce(bad, mpi.OpMax) == 0 {
		return nil
	}
	if local != nil {
		return local
	}
	return errors.New("ra: a peer rank failed restoring the checkpoint")
}

// AgreedPosition reads checkpoint slot 0 — every world contains rank 0, so
// slot 0 names the latest complete checkpoint set regardless of the world
// size that wrote it — and collectively verifies every rank of the current
// world observes the same position. ok=false with a nil error means no
// checkpoint exists anywhere. Collective.
func AgreedPosition(comm *mpi.Comm, sink CheckpointSink) (Position, bool, error) {
	cp, ok, err := sink.Latest(0)
	pos := posNone
	switch {
	case err != nil:
		pos = posErr // poison the agreement so peers error rather than diverge
	case ok:
		pos = posWord(cp.Ranks, cp.Stratum, cp.Iter)
	}
	agreed, aerr := agree(comm, pos)
	if err != nil {
		return Position{}, false, err
	}
	if aerr != nil {
		return Position{}, false, aerr
	}
	if agreed == posNone {
		return Position{}, false, nil
	}
	return Position{Ranks: cp.Ranks, Stratum: cp.Stratum, Iter: cp.Iter}, true, nil
}

// LatestAgreed loads this rank's latest checkpoint and collectively
// verifies that every rank holds a checkpoint for the same (stratum,
// iteration) position, written by a world of this size. It is the same-size
// fast path: each rank touches only its own shard. Use AgreedPosition +
// CollectRemap when the world size may have changed. ok=false (with a nil
// error) means no rank has a checkpoint.
func LatestAgreed(comm *mpi.Comm, sink CheckpointSink) (Checkpoint, bool, error) {
	cp, ok, err := sink.Latest(comm.Rank())
	pos := posNone
	switch {
	case err != nil:
		pos = posErr
	case ok:
		pos = posWord(cp.Ranks, cp.Stratum, cp.Iter)
	}
	agreed, aerr := agree(comm, pos)
	if err != nil {
		return Checkpoint{}, false, err
	}
	if aerr != nil {
		return Checkpoint{}, false, aerr
	}
	if agreed == posNone {
		return Checkpoint{}, false, nil
	}
	if cp.Ranks != comm.Size() {
		return Checkpoint{}, false, fmt.Errorf(
			"ra: checkpoint was written by a %d-rank world, cannot same-size resume with %d ranks (use the remap path)",
			cp.Ranks, comm.Size())
	}
	return cp, true, nil
}

// CollectRemap loads the complete checkpoint set of an agreed position —
// one checkpoint per original rank — validating each against the position.
// It is rank-local (every rank reads the whole set; a remap restore needs
// the union anyway) and reports errors locally; callers must funnel the
// outcome through a collective agreement before the next collective op.
func CollectRemap(sink CheckpointSink, pos Position) ([]Checkpoint, error) {
	cps := make([]Checkpoint, pos.Ranks)
	for r := 0; r < pos.Ranks; r++ {
		cp, ok, err := sink.Latest(r)
		if err != nil {
			return nil, fmt.Errorf("ra: reading original rank %d's checkpoint for remap: %w", r, err)
		}
		if !ok {
			return nil, fmt.Errorf("ra: original rank %d's checkpoint is missing: torn checkpoint set", r)
		}
		if !pos.Matches(cp) {
			return nil, fmt.Errorf(
				"ra: original rank %d's checkpoint is at (ranks %d, stratum %d, iter %d), set position is (%d, %d, %d): torn checkpoint set",
				r, cp.Ranks, cp.Stratum, cp.Iter, pos.Ranks, pos.Stratum, pos.Iter)
		}
		cps[r] = cp
	}
	return cps, nil
}
