// Package tuple provides the fixed-arity tuple representation used by all
// relational kernels, together with hashing and a flat buffer codec.
//
// A tuple is a slice of 64-bit column values. Relations in this system have
// a fixed arity, and within a relation the first k columns are the "index"
// (join) columns used for bucket placement; the remaining columns either
// complete the set-semantics key or, for aggregated relations, hold the
// dependent (aggregated) value.
package tuple

import (
	"fmt"
	"strings"
)

// Value is a single column value. All columns are 64-bit words; callers
// encode vertex ids, path lengths, counts, or fixed-point numerics as
// needed. It is an alias (not a defined type) so that tuple buffers are
// interchangeable with the raw word slices moved by the message-passing
// substrate.
type Value = uint64

// Tuple is one row of a relation. Tuples are value slices and are never
// aliased across relations: storage layers copy on insert.
type Tuple []Value

// Clone returns a copy of t that shares no storage with it.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports whether t and u have the same arity and the same value in
// every column.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i, v := range t {
		if u[i] != v {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically column by column. It returns a
// negative number if t < u, zero if they are equal, and a positive number if
// t > u. Shorter tuples order before longer ones when they share a prefix.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		switch {
		case t[i] < u[i]:
			return -1
		case t[i] > u[i]:
			return 1
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// ComparePrefix orders t against u considering only the first k columns of
// each. Both tuples must have at least k columns.
func (t Tuple) ComparePrefix(u Tuple, k int) int {
	for i := 0; i < k; i++ {
		switch {
		case t[i] < u[i]:
			return -1
		case t[i] > u[i]:
			return 1
		}
	}
	return 0
}

// String renders the tuple as "(v0, v1, ...)" for diagnostics.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", uint64(v))
	}
	b.WriteByte(')')
	return b.String()
}

// Project returns a new tuple holding t's columns at the given positions, in
// order. It panics if any position is out of range, which indicates a plan
// compilation bug rather than a data error.
func (t Tuple) Project(cols []int) Tuple {
	out := make(Tuple, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

const (
	// fnvOffset and fnvPrime are the 64-bit FNV-1a parameters.
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// HashPrefix hashes the first k columns of t with 64-bit FNV-1a, mixing each
// column byte by byte. The same function is used for bucket placement on
// every rank so that tuples with equal join columns always meet.
func (t Tuple) HashPrefix(k int) uint64 {
	var h uint64 = fnvOffset
	for i := 0; i < k; i++ {
		v := uint64(t[i])
		for b := 0; b < 8; b++ {
			h ^= v & 0xff
			h *= fnvPrime
			v >>= 8
		}
	}
	return mix(h)
}

// HashSuffix hashes the columns of t from position k onward. It is used for
// sub-bucket placement, which spreads tuples sharing join columns across
// ranks when spatial load balancing is enabled.
func (t Tuple) HashSuffix(k int) uint64 {
	var h uint64 = fnvOffset
	for i := k; i < len(t); i++ {
		v := uint64(t[i])
		for b := 0; b < 8; b++ {
			h ^= v & 0xff
			h *= fnvPrime
			v >>= 8
		}
	}
	return mix(h)
}

// Hash hashes the entire tuple.
func (t Tuple) Hash() uint64 { return t.HashPrefix(len(t)) }

// mix applies a 64-bit finalizer (splitmix64's) so that sequential keys do
// not land in sequential buckets.
func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
