package tuple

import "testing"

func TestBufferRoundTrip(t *testing.T) {
	b := NewBuffer(3, 2)
	b.Append(Tuple{1, 2, 3})
	b.Append(Tuple{4, 5, 6})
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if b.Bytes() != 48 {
		t.Fatalf("Bytes = %d, want 48", b.Bytes())
	}
	dec, err := Decode(3, b.Words)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.At(0).Equal(Tuple{1, 2, 3}) || !dec.At(1).Equal(Tuple{4, 5, 6}) {
		t.Fatalf("decoded tuples wrong: %v %v", dec.At(0), dec.At(1))
	}
}

func TestBufferEachOrder(t *testing.T) {
	b := NewBuffer(1, 3)
	for i := 0; i < 5; i++ {
		b.Append(Tuple{Value(i)})
	}
	var seen []Value
	b.Each(func(tt Tuple) { seen = append(seen, tt[0]) })
	for i, v := range seen {
		if v != Value(i) {
			t.Fatalf("Each out of order at %d: %v", i, seen)
		}
	}
}

func TestBufferReset(t *testing.T) {
	b := NewBuffer(2, 1)
	b.Append(Tuple{1, 2})
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after reset = %d", b.Len())
	}
	b.Append(Tuple{3, 4})
	if !b.At(0).Equal(Tuple{3, 4}) {
		t.Fatalf("append after reset broken: %v", b.At(0))
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(3, make([]Value, 4)); err == nil {
		t.Error("Decode accepted 4 words with arity 3")
	}
	if _, err := Decode(0, nil); err == nil {
		t.Error("Decode accepted arity 0")
	}
	if _, err := Decode(2, nil); err != nil {
		t.Errorf("Decode rejected empty payload: %v", err)
	}
}

func TestAppendArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Append with wrong arity did not panic")
		}
	}()
	NewBuffer(2, 1).Append(Tuple{1})
}
