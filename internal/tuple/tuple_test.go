package tuple

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCloneIndependence(t *testing.T) {
	orig := Tuple{1, 2, 3}
	c := orig.Clone()
	c[0] = 99
	if orig[0] != 1 {
		t.Fatalf("clone aliases original: %v", orig)
	}
	if !orig.Equal(Tuple{1, 2, 3}) {
		t.Fatalf("original mutated: %v", orig)
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want bool
	}{
		{Tuple{}, Tuple{}, true},
		{Tuple{1}, Tuple{1}, true},
		{Tuple{1}, Tuple{2}, false},
		{Tuple{1, 2}, Tuple{1}, false},
		{Tuple{1, 2, 3}, Tuple{1, 2, 3}, true},
		{Tuple{1, 2, 3}, Tuple{1, 2, 4}, false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{Tuple{1, 2}, Tuple{1, 2}, 0},
		{Tuple{1, 2}, Tuple{1, 3}, -1},
		{Tuple{2, 0}, Tuple{1, 9}, 1},
		{Tuple{1}, Tuple{1, 0}, -1},
		{Tuple{1, 0}, Tuple{1}, 1},
		{Tuple{}, Tuple{}, 0},
	}
	for _, c := range cases {
		got := c.a.Compare(c.b)
		if sign(got) != c.want {
			t.Errorf("%v.Compare(%v) = %d, want sign %d", c.a, c.b, got, c.want)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b []uint64) bool {
		ta, tb := Tuple(a), Tuple(b)
		return sign(ta.Compare(tb)) == -sign(tb.Compare(ta))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitiveOnTriples(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		mk := func() Tuple {
			n := rng.Intn(4)
			tt := make(Tuple, n)
			for j := range tt {
				tt[j] = Value(rng.Intn(3))
			}
			return tt
		}
		a, b, c := mk(), mk(), mk()
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			t.Fatalf("transitivity violated: %v %v %v", a, b, c)
		}
	}
}

func TestComparePrefix(t *testing.T) {
	a := Tuple{1, 2, 99}
	b := Tuple{1, 2, 3}
	if a.ComparePrefix(b, 2) != 0 {
		t.Errorf("prefix-2 of %v vs %v should be equal", a, b)
	}
	if a.Compare(b) <= 0 {
		t.Errorf("full compare should differ")
	}
	if got := a.ComparePrefix(b, 3); got <= 0 {
		t.Errorf("prefix-3 compare = %d, want > 0", got)
	}
}

func TestProject(t *testing.T) {
	tt := Tuple{10, 20, 30, 40}
	got := tt.Project([]int{3, 1, 1})
	want := Tuple{40, 20, 20}
	if !got.Equal(want) {
		t.Errorf("Project = %v, want %v", got, want)
	}
	// Projection result must not alias the source.
	got[0] = 0
	if tt[3] != 40 {
		t.Errorf("projection aliased source")
	}
}

func TestHashPrefixConsistency(t *testing.T) {
	a := Tuple{5, 7, 100}
	b := Tuple{5, 7, 2000}
	if a.HashPrefix(2) != b.HashPrefix(2) {
		t.Errorf("tuples sharing join columns must share prefix hash")
	}
	if a.Hash() == b.Hash() {
		t.Errorf("full hash collision on differing tuples (possible, but not for these)")
	}
}

func TestHashSuffixIgnoresPrefix(t *testing.T) {
	a := Tuple{1, 2, 42}
	b := Tuple{9, 9, 42}
	if a.HashSuffix(2) != b.HashSuffix(2) {
		t.Errorf("suffix hash must ignore the first k columns")
	}
}

func TestHashSpreads(t *testing.T) {
	// Sequential keys should not all land in the same few buckets.
	const buckets = 16
	counts := make([]int, buckets)
	for i := 0; i < 1600; i++ {
		h := Tuple{Value(i)}.HashPrefix(1)
		counts[h%buckets]++
	}
	for b, n := range counts {
		if n == 0 {
			t.Errorf("bucket %d empty after 1600 sequential keys", b)
		}
		if n > 400 {
			t.Errorf("bucket %d holds %d of 1600 keys; hash is not spreading", b, n)
		}
	}
}

func TestString(t *testing.T) {
	if got := (Tuple{1, 2}).String(); got != "(1, 2)" {
		t.Errorf("String = %q", got)
	}
	if got := (Tuple{}).String(); got != "()" {
		t.Errorf("String = %q", got)
	}
}
