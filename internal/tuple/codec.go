package tuple

import "fmt"

// Buffer is the flat wire representation of a batch of same-arity tuples.
// The message-passing layer only moves word slices, mirroring MPI's
// requirement that nested structures be serialized into 1-D buffers before
// transmission. A Buffer's length is always a multiple of its arity.
type Buffer struct {
	Arity int
	Words []Value
}

// NewBuffer returns an empty buffer for tuples of the given arity with
// capacity for n tuples.
func NewBuffer(arity, n int) *Buffer {
	return &Buffer{Arity: arity, Words: make([]Value, 0, arity*n)}
}

// Append serializes t onto the buffer. It panics if t's arity differs from
// the buffer's, which indicates a kernel bug.
func (b *Buffer) Append(t Tuple) {
	if len(t) != b.Arity {
		panic(fmt.Sprintf("tuple: append arity %d to buffer of arity %d", len(t), b.Arity))
	}
	b.Words = append(b.Words, t...)
}

// Len returns the number of tuples currently in the buffer.
func (b *Buffer) Len() int {
	if b.Arity == 0 {
		return 0
	}
	return len(b.Words) / b.Arity
}

// Bytes returns the buffer's size on the wire in bytes (8 bytes per word).
func (b *Buffer) Bytes() int { return len(b.Words) * 8 }

// At returns the i-th tuple as a view into the buffer. The returned slice
// aliases the buffer; callers that retain it must Clone.
func (b *Buffer) At(i int) Tuple {
	return Tuple(b.Words[i*b.Arity : (i+1)*b.Arity])
}

// Each calls fn for every tuple in the buffer, in order. The tuple passed to
// fn aliases the buffer and must not be retained without cloning.
func (b *Buffer) Each(fn func(Tuple)) {
	for i, n := 0, b.Len(); i < n; i++ {
		fn(b.At(i))
	}
}

// Reset truncates the buffer for reuse, keeping its backing storage.
func (b *Buffer) Reset() { b.Words = b.Words[:0] }

// Decode splits a raw word slice received off the wire back into a buffer of
// the given arity. It returns an error if the slice length is not a multiple
// of the arity, which indicates corruption or an arity mismatch between
// sender and receiver.
func Decode(arity int, words []Value) (*Buffer, error) {
	if arity <= 0 {
		return nil, fmt.Errorf("tuple: decode with non-positive arity %d", arity)
	}
	if len(words)%arity != 0 {
		return nil, fmt.Errorf("tuple: decode %d words with arity %d", len(words), arity)
	}
	return &Buffer{Arity: arity, Words: words}, nil
}
