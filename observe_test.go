package paralagg

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"paralagg/internal/mpi"
)

// ccProgram is the smallest recursive-aggregation program the observability
// tests can run quickly: min-label connected components over a path graph.
func ccProgram(t *testing.T) *Program {
	t.Helper()
	p := NewProgram()
	if err := p.DeclareSet("edge", 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.DeclareAgg("cc", 1, MinAgg); err != nil {
		t.Fatal(err)
	}
	p.Add(R(A("cc", Var("y"), Var("z")),
		A("cc", Var("x"), Var("z")),
		A("edge", Var("x"), Var("y"))))
	return p
}

// loadPathGraph loads an undirected path graph 0-1-...-n and seeds cc(i, i).
func loadPathGraph(n int) func(*Rank) error {
	return func(rk *Rank) error {
		if err := rk.LoadShare("edge", n, func(i int, emit func(Tuple)) {
			emit(Tuple{uint64(i), uint64(i + 1)})
			emit(Tuple{uint64(i + 1), uint64(i)})
		}); err != nil {
			return err
		}
		var seeds []Tuple
		for v := uint64(rk.ID()); v <= uint64(n); v += uint64(rk.Size()) {
			seeds = append(seeds, Tuple{v, v})
		}
		return rk.Load("cc", seeds)
	}
}

// TestConfigValidate drives every rejected combination through Exec's
// front-door validation.
func TestConfigValidate(t *testing.T) {
	sink := NewMemoryCheckpointSink()
	fake := fakeTransport{}
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" = valid
	}{
		{"default", Config{}, ""},
		{"plain", Config{Ranks: 4, Subs: 2}, ""},
		{"negative ranks", Config{Ranks: -1}, "Ranks must be >= 0"},
		{"transport plus ranks", Config{Transport: fake, Ranks: 4}, "mutually exclusive"},
		{"transport alone", Config{Transport: fake}, ""},
		{"negative subs", Config{Subs: -2}, "Subs must be >= 0"},
		{"negative subsfor", Config{SubsFor: map[string]int{"edge": -1}}, `SubsFor["edge"]`},
		{"negative maxiters", Config{MaxIters: -3}, "MaxIters must be >= 0"},
		{"negative watchdog", Config{Watchdog: -time.Second}, "Watchdog must be >= 0"},
		{"negative checkpoint-every", Config{CheckpointEvery: -1}, "CheckpointEvery must be >= 0"},
		{"checkpoint without sink", Config{CheckpointEvery: 4}, "needs Config.Checkpoints"},
		{"checkpoint with sink", Config{CheckpointEvery: 4, Checkpoints: sink}, ""},
		{"resume without sink", Config{Resume: true}, "no sink to restore from"},
		{"resume with sink", Config{Resume: true, Checkpoints: sink}, ""},
		{"schedule flat", Config{CollectiveSchedule: "flat"}, ""},
		{"schedule tree", Config{CollectiveSchedule: "tree"}, ""},
		{"schedule ring", Config{CollectiveSchedule: "ring"}, ""},
		{"schedule auto", Config{CollectiveSchedule: "auto"}, ""},
		{"schedule unknown", Config{CollectiveSchedule: "star"}, "unknown collective schedule"},
		{"topology matching", Config{Ranks: 2, Topology: TopologyFromHosts([]string{"a", "b"})}, ""},
		{"topology wrong size", Config{Ranks: 4, Topology: TopologyFromHosts([]string{"a", "b"})}, "Config.Topology"},
		{"topology default ranks", Config{Topology: TopologyFromHosts([]string{"a", "b", "a", "b"})}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestExecRejectsInvalidConfig confirms Exec runs validation before building
// a world.
func TestExecRejectsInvalidConfig(t *testing.T) {
	_, err := Exec(ccProgram(t), Config{Ranks: -5}, loadPathGraph(4), nil)
	if err == nil || !strings.Contains(err.Error(), "Ranks must be >= 0") {
		t.Fatalf("Exec accepted an invalid config: %v", err)
	}
}

// fakeTransport satisfies the Transport interface for validation tests; it
// is never started.
type fakeTransport struct{}

func (fakeTransport) Self() int                       { return 0 }
func (fakeTransport) Size() int                       { return 2 }
func (fakeTransport) Send(int, int, []mpi.Word) error { return nil }
func (fakeTransport) Start(mpi.Handler) error         { return nil }
func (fakeTransport) Close() error                    { return nil }
func (fakeTransport) Net() mpi.NetStats               { return mpi.NetStats{} }

// TestObserverReceivesEventStream runs a real fixpoint with an observer
// attached and checks the stream's shape end to end.
func TestObserverReceivesEventStream(t *testing.T) {
	var mu sync.Mutex
	kinds := map[EventKind]int{}
	var phaseNames []string
	var relEvents []*Event
	var runStart, runEnd *Event
	obsv := ObserverFunc(func(e *Event) {
		mu.Lock()
		defer mu.Unlock()
		kinds[e.Kind]++
		switch e.Kind {
		case EventPhase:
			phaseNames = append(phaseNames, e.Name)
		case EventRelation:
			relEvents = append(relEvents, e.Clone())
		case EventRunStart:
			runStart = e.Clone()
		case EventRunEnd:
			runEnd = e.Clone()
		}
	})

	res, err := Exec(ccProgram(t), Config{Ranks: 3, Observer: obsv}, loadPathGraph(6), nil)
	if err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if runStart == nil || runStart.Ranks != 3 {
		t.Fatalf("no run-start event with the world size: %+v", runStart)
	}
	if runEnd == nil || runEnd.Err != "" {
		t.Fatalf("no clean run-end event: %+v", runEnd)
	}
	if kinds[EventStratumStart] == 0 {
		t.Fatal("no stratum-start events")
	}
	// One iteration event per rank per completed iteration.
	if got, want := kinds[EventIteration], 3*res.Iterations; got != want {
		t.Fatalf("iteration events = %d, want ranks×iters = %d", got, want)
	}
	if kinds[EventPhase] == 0 {
		t.Fatal("no phase events")
	}
	seen := map[string]bool{}
	for _, n := range phaseNames {
		seen[n] = true
	}
	for _, want := range []string{"local-join", "all-to-all", "local-agg"} {
		if !seen[want] {
			t.Fatalf("no %q phase samples (saw %v)", want, seen)
		}
	}
	// Relation events carry the global count, the Δ, and the full per-rank
	// distribution.
	var ccFinal *Event
	for _, e := range relEvents {
		if e.Name == "cc" {
			ccFinal = e
		}
	}
	if ccFinal == nil {
		t.Fatal("no relation events for cc")
	}
	if ccFinal.Count != res.Counts["cc"] {
		t.Fatalf("final cc relation event count %d, want %d", ccFinal.Count, res.Counts["cc"])
	}
	if len(ccFinal.PerRank) != 3 {
		t.Fatalf("per-rank distribution has %d entries, want 3", len(ccFinal.PerRank))
	}
	var sum uint64
	for _, c := range ccFinal.PerRank {
		sum += uint64(c)
	}
	if sum != ccFinal.Count {
		t.Fatalf("per-rank counts sum to %d, want %d", sum, ccFinal.Count)
	}
}

// TestObserverSeesCheckpointAndRecovery checks the fault-tolerance events.
func TestObserverSeesCheckpointAndRecovery(t *testing.T) {
	sink := NewMemoryCheckpointSink()
	var mu sync.Mutex
	kinds := map[EventKind]int{}
	obsv := ObserverFunc(func(e *Event) {
		mu.Lock()
		kinds[e.Kind]++
		mu.Unlock()
	})
	cfg := Config{Ranks: 2, Observer: obsv, CheckpointEvery: 2, Checkpoints: sink}
	if _, err := Exec(ccProgram(t), cfg, loadPathGraph(8), nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	ckpts := kinds[EventCheckpoint]
	mu.Unlock()
	if ckpts == 0 {
		t.Fatal("no checkpoint events")
	}

	cfg.Resume = true
	if _, err := Exec(ccProgram(t), cfg, loadPathGraph(8), nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	recov := kinds[EventRecovery]
	mu.Unlock()
	if recov == 0 {
		t.Fatal("no recovery events on resume")
	}
}

// TestRankAccessorsRejectUnknownRelations covers the (value, error) redesign:
// unknown names report errors instead of panicking.
func TestRankAccessorsRejectUnknownRelations(t *testing.T) {
	_, err := Exec(ccProgram(t), Config{Ranks: 2}, loadPathGraph(4), func(rk *Rank) error {
		if _, err := rk.Count("nope"); err == nil || !strings.Contains(err.Error(), `unknown relation "nope"`) {
			return errorf(t, "Count: %v", err)
		}
		if err := rk.Each("nope", func(Tuple) {}); err == nil || !strings.Contains(err.Error(), `unknown relation "nope"`) {
			return errorf(t, "Each: %v", err)
		}
		if _, err := rk.PerRankCounts("nope"); err == nil || !strings.Contains(err.Error(), `unknown relation "nope"`) {
			return errorf(t, "PerRankCounts: %v", err)
		}
		// Known relations still answer.
		n, err := rk.Count("cc")
		if err != nil || n == 0 {
			return errorf(t, "Count(cc) = %d, %v", n, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func errorf(t *testing.T, format string, args ...any) error {
	t.Helper()
	t.Errorf(format, args...)
	return nil
}

// TestResultAssembly checks Summary and the PhaseSeconds bookkeeping Exec
// builds the report from.
func TestResultAssembly(t *testing.T) {
	res, err := Exec(ccProgram(t), Config{Ranks: 2}, loadPathGraph(6), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	for _, want := range []string{"ranks=2", "cc:", "edge:", "tuples"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Summary missing %q:\n%s", want, s)
		}
	}
	if res.Iterations == 0 || res.Iterations != sum(res.StratumIters) {
		t.Fatalf("Iterations %d != sum of StratumIters %v", res.Iterations, res.StratumIters)
	}
	// PhaseSeconds must decompose SimSeconds: the named phases sum to the
	// total (within float tolerance).
	var phaseSum float64
	for _, v := range res.PhaseSeconds {
		phaseSum += v
	}
	if diff := res.SimSeconds - phaseSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("PhaseSeconds sum %.12f != SimSeconds %.12f", phaseSum, res.SimSeconds)
	}
	// The per-iteration series re-sums to the same totals.
	if len(res.IterPhaseSeconds) != res.Iterations {
		t.Fatalf("IterPhaseSeconds has %d entries, want %d", len(res.IterPhaseSeconds), res.Iterations)
	}
	perPhase := map[string]float64{}
	for _, it := range res.IterPhaseSeconds {
		for ph, v := range it {
			perPhase[ph] += v
		}
	}
	for ph, total := range res.PhaseSeconds {
		if diff := total - perPhase[ph]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("phase %q: per-iteration sum %.12f != total %.12f", ph, perPhase[ph], total)
		}
	}
}

// TestResultJSONRoundTrip pins the wire names and checks the document
// survives a round trip.
func TestResultJSONRoundTrip(t *testing.T) {
	res, err := Exec(ccProgram(t), Config{Ranks: 2}, loadPathGraph(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"ranks", "stratum_iters", "iterations", "counts", "sim_seconds",
		"phase_seconds", "iter_phase_seconds", "comm_bytes", "comm_msgs",
	} {
		if _, ok := doc[field]; !ok {
			t.Fatalf("JSON document missing field %q: %s", field, data)
		}
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, &back) {
		t.Fatalf("round trip changed the result:\n%+v\n%+v", res, &back)
	}
}

func sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
