package paralagg

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// tcProgram builds transitive closure over a chain of n nodes: n·(n-1)/2
// paths, roughly n fixpoint iterations — plenty of room to checkpoint,
// crash, and recover mid-run.
func tcProgram(t *testing.T) *Program {
	t.Helper()
	p := NewProgram()
	if err := p.DeclareSet("edge", 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.DeclareSet("path", 2, 1); err != nil {
		t.Fatal(err)
	}
	p.Add(
		R(A("path", Var("x"), Var("y")),
			A("edge", Var("x"), Var("y"))),
		R(A("path", Var("x"), Var("z")),
			A("path", Var("x"), Var("y")),
			A("edge", Var("y"), Var("z"))),
	)
	return p
}

func loadChain(n int) func(*Rank) error {
	return func(rk *Rank) error {
		return rk.LoadShare("edge", n-1, func(i int, emit func(Tuple)) {
			emit(Tuple{uint64(i), uint64(i + 1)})
		})
	}
}

const chainNodes = 30
const chainPaths = chainNodes * (chainNodes - 1) / 2 // 435

func TestSuperviseRecoversSameSize(t *testing.T) {
	var logs []string
	res, rep, err := Supervise(tcProgram(t), SuperviseConfig{
		Config: Config{
			Ranks:           4,
			CheckpointEvery: 3,
			Checkpoints:     NewMemoryCheckpointSink(),
			Faults:          &FaultPlan{Crashes: []Crash{{Rank: 3, Iter: 5, Op: "alltoallv"}}},
		},
		RecoveryBackoff: time.Millisecond,
		Logf:            func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) },
	}, loadChain(chainNodes), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["path"] != chainPaths {
		t.Errorf("path count = %d, want %d", res.Counts["path"], chainPaths)
	}
	if rep.RecoveryAttempts != 1 || rep.FinalRanks != 4 {
		t.Errorf("report: %+v", rep)
	}
	if len(rep.RanksLost) != 1 || rep.RanksLost[0] != 3 {
		t.Errorf("RanksLost = %v, want [3]", rep.RanksLost)
	}
	if len(logs) == 0 {
		t.Error("no supervisor log lines")
	}
	// The recovered world restored at the same size, so the remap path must
	// NOT have run: recovery time is accounted under the recovery phase.
	if res.PhaseSeconds["remap"] != 0 {
		t.Errorf("same-size recovery used remap: %v", res.PhaseSeconds["remap"])
	}
	if res.PhaseSeconds["recovery"] <= 0 {
		t.Errorf("recovery phase not metered: %v", res.PhaseSeconds["recovery"])
	}
}

func TestSuperviseDegradesAndRemaps(t *testing.T) {
	res, rep, err := Supervise(tcProgram(t), SuperviseConfig{
		Config: Config{
			Ranks:           4,
			CheckpointEvery: 3,
			Checkpoints:     NewMemoryCheckpointSink(),
			Faults:          &FaultPlan{Crashes: []Crash{{Rank: 3, Iter: 5, Op: "alltoallv"}}},
		},
		Degrade:         true,
		RecoveryBackoff: time.Millisecond,
	}, loadChain(chainNodes), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["path"] != chainPaths {
		t.Errorf("path count = %d, want %d", res.Counts["path"], chainPaths)
	}
	if rep.FinalRanks != 3 || res.Ranks != 3 {
		t.Errorf("degrade: final ranks %d / result ranks %d, want 3", rep.FinalRanks, res.Ranks)
	}
	// Degraded restore goes through the elastic remap path and is metered.
	if res.PhaseSeconds["remap"] <= 0 {
		t.Errorf("remap phase not metered on degraded recovery: %v", res.PhaseSeconds["remap"])
	}
}

func TestSuperviseCrashBeforeFirstCheckpointRestartsFresh(t *testing.T) {
	res, rep, err := Supervise(tcProgram(t), SuperviseConfig{
		Config: Config{
			Ranks: 4,
			// Interval longer than the run: the crash at iteration 2 happens
			// before any save, so the restart must run from scratch.
			CheckpointEvery: 1000,
			Checkpoints:     NewMemoryCheckpointSink(),
			Faults:          &FaultPlan{Crashes: []Crash{{Rank: 1, Iter: 2, Op: "alltoallv"}}},
		},
		RecoveryBackoff: time.Millisecond,
	}, loadChain(chainNodes), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["path"] != chainPaths {
		t.Errorf("path count = %d, want %d", res.Counts["path"], chainPaths)
	}
	if rep.RecoveryAttempts != 1 {
		t.Errorf("report: %+v", rep)
	}
	// No save ever happened, so the restart could not resume: the report must
	// say so instead of silently pretending a checkpoint was found.
	if rep.RestartsFromScratch != 1 {
		t.Errorf("RestartsFromScratch = %d, want 1", rep.RestartsFromScratch)
	}
	if rep.DivergenceRollbacks != 0 {
		t.Errorf("a plain crash was classified as a divergence rollback: %+v", rep)
	}
}

func TestSuperviseClassifiesDivergenceRollback(t *testing.T) {
	var logs []string
	res, rep, err := Supervise(tcProgram(t), SuperviseConfig{
		Config: Config{
			Ranks:           4,
			Integrity:       true,
			CheckpointEvery: 3,
			Checkpoints:     NewMemoryCheckpointSink(),
			// Flip a stored word of "path" on rank 0 at iteration 5: the
			// integrity layer must abort the attempt and the supervisor must
			// classify the failure as a divergence and roll back.
			Faults: &FaultPlan{Seed: 1, StateCorrupts: []StateCorrupt{{Rank: 0, Iter: 5, Rel: "path"}}},
		},
		RecoveryBackoff: time.Millisecond,
		Logf:            func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) },
	}, loadChain(chainNodes), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["path"] != chainPaths {
		t.Errorf("path count = %d, want %d", res.Counts["path"], chainPaths)
	}
	if rep.DivergenceRollbacks < 1 {
		t.Errorf("DivergenceRollbacks = %d, want >= 1 (report: %+v)", rep.DivergenceRollbacks, rep)
	}
	if rep.RestartsFromScratch != 0 {
		t.Errorf("rollback restarted from scratch %d times — the iteration-3 checkpoint should have been valid", rep.RestartsFromScratch)
	}
	found := false
	for _, l := range logs {
		if strings.Contains(l, "state diverged") {
			found = true
		}
	}
	if !found {
		t.Errorf("no divergence log line; logs: %q", logs)
	}
}

func TestSuperviseGivesUpAfterBudget(t *testing.T) {
	attempts := 0
	_, rep, err := Supervise(tcProgram(t), SuperviseConfig{
		Config: Config{
			Ranks:           4,
			CheckpointEvery: 3,
			Checkpoints:     NewMemoryCheckpointSink(),
		},
		MaxRestarts:     2,
		RecoveryBackoff: time.Millisecond,
		FaultsFor: func(attempt int) *FaultPlan {
			attempts++
			// Kill a rank on every attempt: the budget must run out.
			return &FaultPlan{Crashes: []Crash{{Rank: 0, Iter: 4, Op: "alltoallv"}}}
		},
	}, loadChain(chainNodes), nil)
	if err == nil {
		t.Fatal("supervision with a crash on every attempt succeeded")
	}
	if rep.RecoveryAttempts != 2 || attempts != 3 {
		t.Errorf("recoveries=%d attempts=%d, want 2/3", rep.RecoveryAttempts, attempts)
	}
	if _, ok := AsRankFailure(err); !ok {
		t.Errorf("terminal error lost rank-failure detail: %v", err)
	}
}

func TestSuperviseRequiresSink(t *testing.T) {
	_, _, err := Supervise(tcProgram(t), SuperviseConfig{Config: Config{Ranks: 2}}, loadChain(5), nil)
	if err == nil {
		t.Fatal("Supervise without a sink did not error")
	}
}

func TestSuperviseNonFaultErrorIsTerminal(t *testing.T) {
	boom := errors.New("bad load")
	var calls atomic.Int64 // the load callback runs on every rank goroutine
	_, rep, err := Supervise(tcProgram(t), SuperviseConfig{
		Config: Config{Ranks: 2, CheckpointEvery: 3, Checkpoints: NewMemoryCheckpointSink()},
	}, func(rk *Rank) error { calls.Add(1); return boom }, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if rep.RecoveryAttempts != 0 || calls.Load() != 2 { // one call per rank, single attempt
		t.Errorf("non-fault error was retried: recoveries=%d calls=%d", rep.RecoveryAttempts, calls.Load())
	}
}

// TestSuperviseFaultsForAndRanksForInteract schedules a fresh crash per
// attempt through FaultsFor while RanksFor pins each restart's world size:
// the two knobs must compose — every attempt runs at the pinned size, the
// per-attempt fault plan targets a rank valid in that world, and the final
// (smallest) world still lands the exact answer through the remap path.
func TestSuperviseFaultsForAndRanksForInteract(t *testing.T) {
	plans := map[int]*FaultPlan{
		0: {Crashes: []Crash{{Rank: 3, Iter: 5, Op: "alltoallv"}}},
		1: {Crashes: []Crash{{Rank: 2, Iter: 8, Op: "alltoallv"}}},
	}
	res, rep, err := Supervise(tcProgram(t), SuperviseConfig{
		Config: Config{
			Ranks:           4,
			CheckpointEvery: 3,
			Checkpoints:     NewMemoryCheckpointSink(),
		},
		RecoveryBackoff: time.Millisecond,
		BackoffSeed:     7,
		FaultsFor:       func(attempt int) *FaultPlan { return plans[attempt] },
		RanksFor: func(restart, prev int, lost []int) int {
			// First restart shrinks to 3, second to 2 — independent of which
			// ranks died, unlike Degrade.
			return prev - 1
		},
	}, loadChain(chainNodes), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["path"] != chainPaths {
		t.Errorf("path count = %d, want %d", res.Counts["path"], chainPaths)
	}
	wantSizes := []int{4, 3, 2}
	if len(rep.AttemptRanks) != 3 {
		t.Fatalf("AttemptRanks = %v, want three attempts", rep.AttemptRanks)
	}
	for i, want := range wantSizes {
		if rep.AttemptRanks[i] != want {
			t.Errorf("attempt %d ran at %d ranks, want %d", i, rep.AttemptRanks[i], want)
		}
	}
	if len(rep.RanksLost) != 2 || rep.RanksLost[0] != 3 || rep.RanksLost[1] != 2 {
		t.Errorf("RanksLost = %v, want [3 2]", rep.RanksLost)
	}
	if rep.FinalRanks != 2 || res.Ranks != 2 {
		t.Errorf("final world: report %d / result %d, want 2", rep.FinalRanks, res.Ranks)
	}
}
