package paralagg

import (
	"paralagg/internal/core"
	"paralagg/internal/lattice"
	"paralagg/internal/tuple"
)

// The declarative surface re-exports the core compiler's types so programs
// are written against this package alone.
type (
	// Program is a declarative rule set; see NewProgram.
	Program = core.Program
	// Rule is one Horn clause built with R.
	Rule = core.Rule
	// Atom is a relation literal built with A.
	Atom = core.Atom
	// Term is a position in an atom: Var, Const, or (heads only) Apply.
	Term = core.Term
	// Var is a named logic variable.
	Var = core.Var
	// Const is a literal column value.
	Const = core.Const
	// Apply computes a head column from body variables.
	Apply = core.Apply
	// Cond is a body filter built with Lt, Le, Ne, or Where.
	Cond = core.Cond
	// Tuple is one row of column values.
	Tuple = tuple.Tuple
	// Value is a single 64-bit column value.
	Value = tuple.Value
	// Aggregator is the recursive-aggregate contract (the paper's
	// RecursiveAggregator API): a join-semilattice over the dependent
	// columns.
	Aggregator = lattice.Aggregator
)

// NewProgram returns an empty program.
func NewProgram() *Program { return core.NewProgram() }

// R builds a rule Head ← Body....
func R(head Atom, body ...Atom) *Rule { return core.R(head, body...) }

// A builds an atom.
func A(rel string, terms ...Term) Atom { return core.A(rel, terms...) }

// Head-term constructors.
var (
	// Add computes integer a + b in a rule head.
	Add = core.Add
	// Sub computes integer a - b in a rule head.
	Sub = core.Sub
	// Mul computes integer a * b in a rule head.
	Mul = core.Mul
	// FAdd adds two Float64bits-encoded values in a rule head.
	FAdd = core.FAdd
	// FMul multiplies two Float64bits-encoded values in a rule head.
	FMul = core.FMul
	// Compute wraps an arbitrary function as a named head term.
	Compute = core.Compute
)

// Condition constructors.
var (
	// Lt filters bindings where a < b.
	Lt = core.Lt
	// Le filters bindings where a <= b.
	Le = core.Le
	// Ne filters bindings where a != b.
	Ne = core.Ne
	// Where wraps an arbitrary predicate as a condition.
	Where = core.Where
)

// The built-in recursive aggregators (the paper implements $MIN, $MAX,
// $MCOUNT and several others on the same API).
var (
	// MinAgg is $MIN: keep the smallest dependent value.
	MinAgg Aggregator = lattice.Min{}
	// MaxAgg is $MAX: keep the largest dependent value.
	MaxAgg Aggregator = lattice.Max{}
	// FMinAgg is $MIN over Float64bits-encoded values.
	FMinAgg Aggregator = lattice.FMin{}
	// BitOrAgg unions 64-bit sets.
	BitOrAgg Aggregator = lattice.BitOr{}
	// LexMin2Agg keeps the lexicographically smallest two-column value.
	LexMin2Agg Aggregator = lattice.LexMin2{}
	// MSumAgg is the monotonic sum (PageRank-style); contributions are
	// delivered exactly once by the runtime.
	MSumAgg Aggregator = lattice.MSum{}
	// MCountAgg is $MCOUNT, the monotonic count.
	MCountAgg Aggregator = lattice.MCount{}
)

// ParseProgram builds a Program from PARALAGG's textual Datalog dialect:
//
//	.set edge 3 key=1
//	.agg spath 2 min
//	spath(F, T, add(L, W)) :- spath(F, M, L), edge(M, T, W).
//
// See the internal/core.Parse documentation for the full grammar. Facts are
// loaded through Rank.Load/LoadShare, not source text.
func ParseProgram(src string) (*Program, error) { return core.Parse(src) }
