// Command graphgen builds catalog graphs (or custom generator runs) and
// writes them as edge-list files, or prints their statistics.
//
//	graphgen -list
//	graphgen -name twitter-sim -stats
//	graphgen -name twitter-sim -out twitter.txt
//	graphgen -kind rmat -scale 12 -edges 30000 -out custom.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"paralagg/internal/graph"
)

func main() {
	list := flag.Bool("list", false, "list catalog graphs")
	name := flag.String("name", "", "catalog graph to build")
	kind := flag.String("kind", "", "custom generator: rmat, uniform, grid, prefattach, social, chain")
	scale := flag.Int("scale", 12, "rmat/social: log2 node count")
	nodes := flag.Int("nodes", 10000, "uniform/prefattach/chain: node count")
	edges := flag.Int("edges", 50000, "edge count")
	rows := flag.Int("rows", 100, "grid rows")
	cols := flag.Int("cols", 100, "grid cols")
	m := flag.Int("m", 5, "prefattach: out-edges per node")
	hubs := flag.Int("hubs", 4, "social: hub count")
	hubdeg := flag.Int("hubdeg", 5000, "social: hub out-degree")
	maxw := flag.Uint64("maxw", 1, "max edge weight (1 = unweighted)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "write edge list to this path")
	stats := flag.Bool("stats", false, "print degree statistics")
	flag.Parse()

	if *list {
		for _, n := range graph.Names() {
			e, _ := graph.Entry(n)
			g := e.Build()
			fmt.Printf("%-18s %8d edges  stands for %s (%s edges in the paper)\n",
				n, g.NumEdges(), e.StandsFor, e.PaperEdges)
		}
		return
	}

	var g *graph.Graph
	var err error
	switch {
	case *name != "":
		g, err = graph.Load(*name)
	case *kind != "":
		switch *kind {
		case "rmat":
			g = graph.RMAT("custom", *scale, *edges, *maxw, *seed)
		case "uniform":
			g = graph.Uniform("custom", *nodes, *edges, *maxw, *seed)
		case "grid":
			g = graph.Grid("custom", *rows, *cols, *maxw, *seed)
		case "prefattach":
			g = graph.PrefAttach("custom", *nodes, *m, *maxw, *seed)
		case "social":
			g = graph.Social("custom", *scale, *edges, *hubs, *hubdeg, *maxw, *seed)
		case "chain":
			g = graph.Chain("custom", *nodes, *maxw, *seed)
		default:
			log.Fatalf("unknown kind %q", *kind)
		}
	default:
		log.Fatal("pass -list, -name, or -kind")
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(g)
	if *stats {
		deg := g.OutDegrees()
		sort.Ints(deg)
		q := func(f float64) int { return deg[int(f*float64(len(deg)-1))] }
		fmt.Printf("out-degree: min=%d p50=%d p90=%d p99=%d max=%d\n",
			deg[0], q(0.5), q(0.9), q(0.99), deg[len(deg)-1])
	}
	if *out != "" {
		if err := g.WriteFile(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
