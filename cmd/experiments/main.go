// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig2,fig3
//	experiments -all [-full]
//
// Output is plain text in the same row/series layout as the paper; see
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"paralagg/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	all := flag.Bool("all", false, "run every experiment")
	exp := flag.String("exp", "", "comma-separated experiment names to run")
	full := flag.Bool("full", false, "use the wider (slower) rank grids and source counts")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-14s %s\n", e.Name, e.Title)
		}
		return
	}
	opts := bench.Options{Full: *full}
	if *all {
		if err := bench.RunAll(os.Stdout, opts); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -list, -all, or -exp name[,name...]")
		os.Exit(2)
	}
	for _, name := range strings.Split(*exp, ",") {
		e, ok := bench.Find(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %v\n", name, bench.Names())
			os.Exit(2)
		}
		if err := bench.RunOne(os.Stdout, e, opts); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
}
