// Command tracecheck validates Chrome-trace files written by paralagg
// -trace: the document must parse, carry exactly one track (tid) per
// expected rank across the given files, name every track, and only use span
// names the metrics layer defines. CI runs it after a trace-smoke query so a
// malformed exporter fails the build instead of a human's tracing session.
//
//	paralagg -query sssp -ranks 4 -trace out.json && tracecheck -ranks 4 out.json
//	paralagg -transport=tcp -spawn 3 -trace g.json && tracecheck -ranks 3 g.rank*.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"paralagg/internal/metrics"
)

type traceEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Args json.RawMessage `json:"args"`
}

type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

func main() {
	ranks := flag.Int("ranks", 0, "expected world size: the files together must carry exactly one span track per rank")
	flag.Parse()
	if *ranks <= 0 || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck -ranks N trace.json [trace2.json ...]")
		os.Exit(2)
	}

	okNames := map[string]bool{}
	for _, ph := range metrics.PhaseNames {
		okNames[ph] = true
	}

	spanTids := map[int]bool{}
	namedTids := map[int]bool{}
	spans := 0
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		var doc traceDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			fatalf("%s: not valid trace JSON: %v", path, err)
		}
		if len(doc.TraceEvents) == 0 {
			fatalf("%s: no trace events", path)
		}
		for _, e := range doc.TraceEvents {
			switch e.Ph {
			case "X":
				spans++
				spanTids[e.Tid] = true
				if !okNames[e.Name] && !strings.HasPrefix(e.Name, "iter ") {
					fatalf("%s: span %q is not a metered phase or an iteration", path, e.Name)
				}
			case "M":
				if e.Name == "thread_name" {
					namedTids[e.Tid] = true
				}
			}
		}
	}

	for r := 0; r < *ranks; r++ {
		if !spanTids[r] {
			fatalf("no span track for rank %d (tracks seen: %v)", r, keys(spanTids))
		}
		if !namedTids[r] {
			fatalf("rank %d's track has no thread_name metadata", r)
		}
	}
	if len(spanTids) != *ranks {
		fatalf("expected %d span tracks, found %d: %v", *ranks, len(spanTids), keys(spanTids))
	}
	fmt.Printf("tracecheck: %d files, %d spans, one track per rank (0..%d)\n",
		flag.NArg(), spans, *ranks-1)
}

func keys(m map[int]bool) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
