package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// The single-machine gang launcher behind -spawn N: allocate one loopback
// port per rank, re-exec this binary N times as -transport=tcp children
// (one rank each), and wait. Every user-set flag is forwarded verbatim, so
//
//	paralagg -query sssp -transport=tcp -spawn 4 -subs 8
//
// runs the same query a 4-goroutine simulated world would, but as four OS
// processes exchanging CRC-framed messages over real sockets.
//
// Children exit 3 when they die of a structured rank failure (a crashed or
// unreachable peer). Under -supervise the launcher then respawns the whole
// gang with -resume, restoring the latest checkpoints from -checkpoint-dir
// — the multi-process mirror of paralagg.Supervise.

// launcherFlags are the flags that steer the launcher or name this
// process's own endpoint; everything else is forwarded to the children.
var launcherFlags = map[string]bool{
	"spawn": true, "transport": true, "rank": true, "peers": true,
	"quiet": true, "ranks": true, "resume": true,
	"supervise": true, "max-restarts": true, "degrade": true, "recovery-backoff": true,
}

// forwardedArgs rebuilds the child argument list from every flag the user
// set explicitly, minus the launcher's own.
func forwardedArgs() []string {
	var fwd []string
	flag.Visit(func(f *flag.Flag) {
		if !launcherFlags[f.Name] {
			fwd = append(fwd, "-"+f.Name+"="+f.Value.String())
		}
	})
	return fwd
}

// allocPorts reserves n distinct loopback ports by binding and immediately
// releasing them. The window between release and the child's bind is a
// race in principle; for a single-machine launcher it is harmless in
// practice, and a clash surfaces as a clean child bind error.
func allocPorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}

// spawnGang runs one gang attempt, and under supervise respawns after rank
// failures (children exiting 3) up to maxRestarts times, adding -resume so
// the restarted gang restores the latest checkpoints. Returns the exit code
// for the launcher process.
func spawnGang(n int, supervise bool, maxRestarts int) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "spawn: %v\n", err)
		return 1
	}
	fwd := forwardedArgs()
	restarts := 0
	if supervise {
		restarts = maxRestarts
	}
	for attempt := 0; ; attempt++ {
		addrs, err := allocPorts(n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spawn: allocating ports: %v\n", err)
			return 1
		}
		peerList := strings.Join(addrs, ",")
		fmt.Fprintf(os.Stderr, "spawn: attempt %d: %d ranks on %s\n", attempt, n, peerList)

		cmds := make([]*exec.Cmd, n)
		for r := 0; r < n; r++ {
			args := append([]string(nil), fwd...)
			args = append(args, "-transport=tcp", "-rank="+strconv.Itoa(r), "-peers="+peerList)
			if r > 0 {
				args = append(args, "-quiet")
			}
			if attempt > 0 {
				args = append(args, "-resume")
			}
			cmd := exec.Command(self, args...)
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				fmt.Fprintf(os.Stderr, "spawn: starting rank %d: %v\n", r, err)
				for _, c := range cmds[:r] {
					c.Process.Kill()
				}
				return 1
			}
			cmds[r] = cmd
		}

		worst, rankFailures := 0, 0
		for r, cmd := range cmds {
			code := 0
			if err := cmd.Wait(); err != nil {
				code = 1
				if ee, ok := err.(*exec.ExitError); ok {
					code = ee.ExitCode()
				}
				fmt.Fprintf(os.Stderr, "spawn: rank %d exited %d\n", r, code)
			}
			if code == 3 {
				rankFailures++
			}
			if code > worst {
				worst = code
			}
		}
		if worst == 0 {
			if attempt > 0 {
				fmt.Fprintf(os.Stderr, "spawn: recovered after %d restart(s)\n", attempt)
			}
			return 0
		}
		if rankFailures == 0 || attempt >= restarts {
			return worst
		}
		fmt.Fprintf(os.Stderr, "spawn: %d rank failure(s), respawning gang with -resume\n", rankFailures)
	}
}
