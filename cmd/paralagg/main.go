// Command paralagg runs one of the built-in queries over a catalog graph
// (or an edge-list file) on a simulated MPI world and reports results and
// phase timings.
//
//	paralagg -query sssp -graph twitter-sim -ranks 64 -subs 8 -plan dynamic
//	paralagg -query cc -file my-edges.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"paralagg"
	"paralagg/internal/chaos"
	"paralagg/internal/graph"
	"paralagg/internal/metrics"
	"paralagg/internal/queries"
)

func main() {
	query := flag.String("query", "sssp", "query: sssp, cc, tc, pagerank, lsp")
	programFile := flag.String("program", "", "run a textual Datalog program instead of a built-in query")
	explain := flag.Bool("explain", false, "print the compiled plan and exit (with -program)")
	gname := flag.String("graph", "twitter-sim", "catalog graph name")
	file := flag.String("file", "", "edge-list file (overrides -graph)")
	ranks := flag.Int("ranks", 32, "simulated MPI ranks")
	subs := flag.Int("subs", 8, "sub-buckets per bucket")
	planName := flag.String("plan", "dynamic", "join layout: dynamic, static-left, static-right, anti")
	nsources := flag.Int("sources", 5, "SSSP sources")
	iters := flag.Int("iters", 15, "PageRank iterations")
	runChaos := flag.Bool("chaos", false, "run the crash/restart differential suite instead of a query")
	ckptEvery := flag.Int("checkpoint-every", 0, "snapshot relations every N fixpoint iterations (0 = off)")
	ckptDir := flag.String("checkpoint-dir", ".paralagg-ckpt", "directory for per-rank checkpoint files")
	resume := flag.Bool("resume", false, "resume from the latest checkpoint in -checkpoint-dir")
	watchdog := flag.Duration("watchdog", 0, "declare a rank dead after it stalls a collective this long (0 = off)")
	flag.Parse()

	if *runChaos {
		runChaosSuite()
		return
	}

	var g *graph.Graph
	var err error
	if *file != "" {
		g, err = graph.ReadFile(*file)
	} else {
		g, err = graph.Load(*gname)
	}
	if err != nil {
		log.Fatal(err)
	}

	plans := map[string]paralagg.PlanPolicy{
		"dynamic": paralagg.Dynamic, "static-left": paralagg.StaticLeft,
		"static-right": paralagg.StaticRight, "anti": paralagg.AntiDynamic,
	}
	plan, ok := plans[*planName]
	if !ok {
		log.Fatalf("unknown plan %q", *planName)
	}
	cfg := paralagg.Config{Ranks: *ranks, Subs: *subs, Plan: plan, Watchdog: *watchdog}
	if *ckptEvery > 0 || *resume {
		cfg.CheckpointEvery = *ckptEvery
		cfg.Checkpoints = paralagg.NewFileCheckpointSink(*ckptDir)
		cfg.Resume = *resume
	}

	if *programFile != "" {
		src, err := os.ReadFile(*programFile)
		if err != nil {
			log.Fatal(err)
		}
		prog, err := paralagg.ParseProgram(string(src))
		if err != nil {
			log.Fatal(err)
		}
		if *explain {
			plan, err := prog.Explain()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(plan)
			return
		}
		// Load the graph's edges into a relation named "edge" whose arity
		// the program declares (2 = unweighted, 3 = weighted).
		d := prog.Decl("edge")
		if d == nil {
			log.Fatal("program must declare an 'edge' relation to receive the graph")
		}
		res, err := paralagg.Exec(prog, cfg, func(rk *paralagg.Rank) error {
			return rk.LoadShare("edge", len(g.Edges), func(i int, emit func(paralagg.Tuple)) {
				e := g.Edges[i]
				if d.Arity >= 3 {
					emit(paralagg.Tuple{e.U, e.V, e.W})
				} else {
					emit(paralagg.Tuple{e.U, e.V})
				}
			})
		}, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.Summary())
		return
	}

	fmt.Printf("%s on %v\nranks=%d subs=%d plan=%s\n\n", *query, g, *ranks, *subs, *planName)

	var res *paralagg.Result
	switch *query {
	case "sssp":
		res, err = queries.RunSSSP(g, g.Sources(*nsources, 1), cfg)
	case "cc":
		res, err = queries.RunCC(g, cfg)
	case "tc":
		res, err = paralagg.Exec(queries.TCProgram(), cfg, func(rk *paralagg.Rank) error {
			return queries.LoadTC(rk, g)
		}, nil)
	case "pagerank":
		res, err = queries.RunPageRank(g, *iters, 0.85, cfg)
	case "lsp":
		res, err = paralagg.Exec(queries.LspProgram(), cfg, func(rk *paralagg.Rank) error {
			return queries.LoadSSSP(rk, g, g.Sources(*nsources, 1))
		}, nil)
	default:
		fmt.Fprintf(os.Stderr, "unknown query %q (sssp, cc, tc, pagerank, lsp)\n", *query)
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(res.Summary())
	fmt.Println("\nphase breakdown (simulated ms):")
	for _, ph := range metrics.PhaseNames {
		fmt.Printf("  %-14s %10.3f\n", ph, res.PhaseSeconds[ph]*1e3)
	}
}

// runChaosSuite executes the chaos harness's differential scenarios: each
// query runs fault-free, then with an injected mid-fixpoint crash, then
// resumed from its checkpoint; the recovered answer must match bit for bit.
func runChaosSuite() {
	failed := 0
	for _, sc := range chaos.Scenarios() {
		for _, ranks := range []int{2, 4} {
			rep, err := chaos.Differential(sc, ranks, 2, 3)
			switch {
			case err != nil:
				fmt.Printf("FAIL %-5s ranks=%d: %v\n", sc.Name, ranks, err)
				failed++
			case !rep.Identical():
				fmt.Printf("FAIL %-5s ranks=%d: recovered relations diverge from the fault-free run\n", sc.Name, ranks)
				failed++
			default:
				fmt.Printf("ok   %-5s ranks=%d: crash at iter 3, resumed, %d relations bit-identical (recovery %.3fms)\n",
					sc.Name, ranks, len(rep.Clean), rep.RecoverySeconds*1e3)
			}
		}
		if err := chaos.StuckCollective(sc, 4, 500*time.Millisecond); err == nil {
			fmt.Printf("FAIL %-5s: hung collective produced no error\n", sc.Name)
			failed++
		} else if _, ok := paralagg.AsRankFailure(err); !ok {
			fmt.Printf("FAIL %-5s: hung collective error is unstructured: %v\n", sc.Name, err)
			failed++
		} else {
			fmt.Printf("ok   %-5s: stuck collective surfaced as structured rank failure\n", sc.Name)
		}
	}
	if failed > 0 {
		fmt.Printf("\n%d chaos checks failed\n", failed)
		os.Exit(1)
	}
	fmt.Println("\nall chaos checks passed")
}
