// Command paralagg runs one of the built-in queries over a catalog graph
// (or an edge-list file) on a simulated MPI world and reports results and
// phase timings.
//
//	paralagg -query sssp -graph twitter-sim -ranks 64 -subs 8 -plan dynamic
//	paralagg -query cc -file my-edges.txt
//	paralagg -query sssp -checkpoint-every 4 -supervise -degrade
//
// With -transport=tcp the ranks are separate OS processes connected by real
// sockets; -spawn N launches and waits for a single-machine gang:
//
//	paralagg -query sssp -transport=tcp -spawn 4
//	paralagg -query sssp -transport=tcp -rank 1 -peers host0:9000,host1:9001
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"paralagg"
	"paralagg/internal/chaos"
	"paralagg/internal/graph"
	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/queries"
	"paralagg/internal/transport/tcp"
)

func main() {
	query := flag.String("query", "sssp", "query: sssp, cc, tc, pagerank, lsp")
	programFile := flag.String("program", "", "run a textual Datalog program instead of a built-in query")
	explain := flag.Bool("explain", false, "print the compiled plan and exit (with -program)")
	gname := flag.String("graph", "twitter-sim", "catalog graph name")
	file := flag.String("file", "", "edge-list file (overrides -graph)")
	ranks := flag.Int("ranks", 32, "simulated MPI ranks")
	subs := flag.Int("subs", 8, "sub-buckets per bucket")
	planName := flag.String("plan", "dynamic", "join layout: dynamic, static-left, static-right, anti")
	nsources := flag.Int("sources", 5, "SSSP sources")
	iters := flag.Int("iters", 15, "PageRank iterations")
	runChaos := flag.Bool("chaos", false, "run the crash/restart differential suite instead of a query")
	ckptEvery := flag.Int("checkpoint-every", 0, "snapshot relations every N fixpoint iterations (0 = off)")
	ckptDir := flag.String("checkpoint-dir", ".paralagg-ckpt", "directory for per-rank checkpoint files")
	ckptKeep := flag.Int("checkpoint-keep", paralagg.DefaultCheckpointKeep, "verified checkpoint generations to retain per rank; recovery falls back past corrupt ones")
	resume := flag.Bool("resume", false, "resume from the latest valid checkpoint in -checkpoint-dir")
	watchdogSpec := flag.String("watchdog", "0", "stall deadline for collectives: a duration (0 = off), or 'auto' for an adaptive deadline tracking observed iteration times")
	integrity := flag.Bool("integrity", false, "fingerprint relation state every iteration and abort with a structured divergence error on any mismatch")
	supervise := flag.Bool("supervise", false, "auto-recover from rank failures: rebuild the world and restore the latest checkpoint")
	maxRestarts := flag.Int("max-restarts", 3, "give up after this many supervised recoveries")
	degrade := flag.Bool("degrade", false, "restart with the surviving rank count instead of the same world size (with -supervise)")
	backoff := flag.Duration("recovery-backoff", 10*time.Millisecond, "first restart delay; doubles per restart (with -supervise)")
	transport := flag.String("transport", "sim", "rank placement: sim (goroutines in one process) or tcp (one OS process per rank over real sockets)")
	rank := flag.Int("rank", -1, "this process's rank (with -transport=tcp)")
	peers := flag.String("peers", "", "comma-separated host:port of every rank, indexed by rank (with -transport=tcp)")
	spawn := flag.Int("spawn", 0, "single-machine launcher: spawn N -transport=tcp rank processes on loopback, wait, respawn with -resume under -supervise")
	quiet := flag.Bool("quiet", false, "suppress result output (the -spawn launcher sets it on ranks > 0)")
	runNetChaos := flag.Bool("chaos-net", false, "run the network chaos suite (wire faults and kill-recovery over the TCP transport)")
	runIntegrityChaos := flag.Bool("chaos-integrity", false, "run the state-integrity chaos suite (silent memory and checkpoint corruption, divergence rollback)")
	runOverloadChaos := flag.Bool("chaos-overload", false, "run the overload chaos suite (slow consumers, memory budgets, full checkpoint devices)")
	memBudget := flag.Int64("mem-budget", 0, "per-rank accounted-memory budget in bytes: soft pressure at 85% sheds scratch, reaching the budget fails structurally instead of OOM-killing (0 = off)")
	sendWindow := flag.Int("send-window", 0, "per-peer TCP flow-control window in unacknowledged frames (0 = default 1024; with -transport=tcp)")
	heartbeatInterval := flag.Duration("heartbeat-interval", 0, "TCP liveness beacon interval between peers (0 = default 100ms; with -transport=tcp)")
	peerTimeout := flag.Duration("peer-timeout", 0, "declare a silent TCP peer dead after this long (0 = 5 heartbeat intervals; must be at least 2x the heartbeat interval; with -transport=tcp)")
	runRecoveryChaos := flag.Bool("chaos-recovery", false, "run the hot-replacement recovery suite (partial restart with epoch'd membership over real TCP gangs)")
	runServingChaos := flag.Bool("chaos-serving", false, "run the serving differential suite (streamed insert/delete batches vs from-scratch recomputation, bit-identical after every batch)")
	serveAddr := flag.String("serve", "", "serving mode: converge once, keep the state resident, and answer /query, /topk and /apply on this host:port until interrupted")
	tracePath := flag.String("trace", "", "write a Chrome-trace JSON file of the run (open in chrome://tracing or Perfetto); TCP children write <path>.rankN")
	metricsAddr := flag.String("metrics-addr", "", "serve live /metrics, /vars and /debug/pprof on this host:port while the run is in flight; TCP children offset the port by their rank")
	jsonOut := flag.Bool("json", false, "print the result as a JSON document (stable field names) instead of the human summary")
	collSched := flag.String("collective-schedule", "flat", "collective routing schedule: flat, tree, ring, or auto (auto re-votes per iteration from observed traffic)")
	topoFile := flag.String("topology", "", "rank-to-host topology file with per-link costs: 'host <rank> <name>' and 'cost <hostA> <hostB> <x>' lines (default: uniform, or host grouping derived from -peers with -transport=tcp)")
	flag.Parse()

	// The schedule steers every suite and run below; validate it before the
	// chaos dispatch so -chaos -collective-schedule=star fails fast.
	if _, err := mpi.ParseScheduleKind(*collSched); err != nil {
		log.Fatalf("-collective-schedule: %v", err)
	}
	chaos.Schedule = *collSched

	if *runChaos {
		runChaosSuite()
		return
	}
	if *runNetChaos {
		runNetChaosSuite()
		return
	}
	if *runIntegrityChaos {
		runIntegrityChaosSuite()
		return
	}
	if *runOverloadChaos {
		runOverloadChaosSuite()
		return
	}
	if *runRecoveryChaos {
		runRecoveryChaosSuite()
		return
	}
	if *runServingChaos {
		runServingChaosSuite()
		return
	}

	// Flag validation: catch contradictory fault-tolerance setups before a
	// world is built, with errors that say how to fix them.
	if *ckptEvery < 0 {
		log.Fatalf("-checkpoint-every must be >= 0, got %d (use 0 to disable checkpointing)", *ckptEvery)
	}
	if *ckptKeep < 1 {
		log.Fatalf("-checkpoint-keep must be >= 1, got %d (recovery needs at least one retained generation)", *ckptKeep)
	}
	var watchdog time.Duration
	adaptiveWatchdog := false
	switch *watchdogSpec {
	case "auto":
		adaptiveWatchdog = true
	case "", "0", "off":
	default:
		d, err := time.ParseDuration(*watchdogSpec)
		if err != nil {
			log.Fatalf("-watchdog must be a duration or 'auto', got %q", *watchdogSpec)
		}
		if d < 0 {
			log.Fatalf("-watchdog must be >= 0, got %v", d)
		}
		watchdog = d
	}
	if *resume {
		if st, err := os.Stat(*ckptDir); err != nil || !st.IsDir() {
			log.Fatalf("-resume needs an existing checkpoint directory: %s not found (run with -checkpoint-every first, or point -checkpoint-dir at it)", *ckptDir)
		}
	}
	if *supervise && *ckptEvery <= 0 {
		log.Fatal("-supervise needs -checkpoint-every N (N > 0): without periodic checkpoints a recovery can only restart from scratch")
	}
	if *maxRestarts < 0 {
		log.Fatalf("-max-restarts must be >= 0, got %d", *maxRestarts)
	}
	if *transport != "sim" && *transport != "tcp" {
		log.Fatalf("-transport must be sim or tcp, got %q", *transport)
	}
	if *memBudget < 0 {
		log.Fatalf("-mem-budget must be >= 0, got %d (use 0 to disable memory accounting)", *memBudget)
	}
	if *sendWindow < 0 {
		log.Fatalf("-send-window must be >= 0, got %d (use 0 for the default window)", *sendWindow)
	}
	if *sendWindow > 0 && *transport != "tcp" {
		log.Fatal("-send-window needs -transport=tcp: the flow-control window bounds the TCP outbox")
	}
	if *heartbeatInterval < 0 {
		log.Fatalf("-heartbeat-interval must be >= 0, got %v (use 0 for the default)", *heartbeatInterval)
	}
	if *peerTimeout < 0 {
		log.Fatalf("-peer-timeout must be >= 0, got %v (use 0 for the default)", *peerTimeout)
	}
	if (*heartbeatInterval > 0 || *peerTimeout > 0) && *transport != "tcp" {
		log.Fatal("-heartbeat-interval and -peer-timeout need -transport=tcp: they tune the socket failure detector")
	}
	if *peerTimeout > 0 {
		// Mirror the transport's own invariant with a flag-level message: a
		// deadline under two beacon intervals would declare live peers dead
		// on ordinary scheduling jitter.
		hb := *heartbeatInterval
		if hb == 0 {
			hb = 100 * time.Millisecond
		}
		if *peerTimeout < 2*hb {
			log.Fatalf("-peer-timeout %v is below 2x the heartbeat interval %v: raise it or lower -heartbeat-interval", *peerTimeout, hb)
		}
	}
	if *serveAddr != "" {
		if *transport != "sim" {
			log.Fatal("-serve needs -transport=sim: the serving engine journals base facts per process, so a TCP gang cannot accept mutations")
		}
		if *supervise {
			log.Fatal("-serve and -supervise are mutually exclusive: the engine owns the world lifecycle in serving mode")
		}
		if *explain {
			log.Fatal("-serve and -explain are mutually exclusive")
		}
	}
	if *spawn > 0 {
		if *transport != "tcp" {
			log.Fatal("-spawn needs -transport=tcp: it launches one TCP rank process per slot")
		}
		os.Exit(spawnGang(*spawn, *supervise, *maxRestarts))
	}

	// TCP child mode: this process hosts exactly one rank of the world.
	var tcpTr *tcp.Transport
	if *transport == "tcp" {
		addrs := strings.Split(*peers, ",")
		if *peers == "" || len(addrs) < 2 {
			log.Fatal("-transport=tcp needs -peers with at least two host:port entries (or use -spawn N)")
		}
		if *rank < 0 || *rank >= len(addrs) {
			log.Fatalf("-rank %d out of range for %d peers", *rank, len(addrs))
		}
		if *supervise {
			log.Fatal("-supervise with -transport=tcp belongs to the launcher: use -spawn N -supervise")
		}
		tr, err := tcp.New(tcp.Config{
			Rank: *rank, Peers: addrs, Seed: int64(*rank),
			SendWindow:     *sendWindow,
			HeartbeatEvery: *heartbeatInterval,
			PeerTimeout:    *peerTimeout,
		})
		if err != nil {
			log.Fatal(err)
		}
		tcpTr = tr
	}

	var g *graph.Graph
	var err error
	if *file != "" {
		g, err = graph.ReadFile(*file)
	} else {
		g, err = graph.Load(*gname)
	}
	if err != nil {
		log.Fatal(err)
	}

	plans := map[string]paralagg.PlanPolicy{
		"dynamic": paralagg.Dynamic, "static-left": paralagg.StaticLeft,
		"static-right": paralagg.StaticRight, "anti": paralagg.AntiDynamic,
	}
	plan, ok := plans[*planName]
	if !ok {
		log.Fatalf("unknown plan %q", *planName)
	}
	cfg := paralagg.Config{
		Ranks: *ranks, Subs: *subs, Plan: plan,
		Watchdog: watchdog, AdaptiveWatchdog: adaptiveWatchdog,
		Integrity: *integrity, MemBudget: *memBudget,
		CollectiveSchedule: *collSched,
	}
	if tcpTr != nil {
		// Transport and Ranks are mutually exclusive (Config.Validate): the
		// world size is the transport's gang size.
		cfg.Transport = tcpTr
		cfg.Ranks = 0
	}
	// Topology: an explicit file wins; otherwise a TCP gang groups ranks by
	// the host part of their -peers entries, so a -spawn launch (which
	// forwards both flags to every child) carries its placement into the
	// schedule builder for free.
	if *topoFile != "" {
		size := *ranks
		if tcpTr != nil {
			size = tcpTr.Size()
		}
		topo, err := paralagg.ParseTopologyFile(*topoFile, size)
		if err != nil {
			log.Fatalf("-topology: %v", err)
		}
		cfg.Topology = topo
	} else if tcpTr != nil {
		cfg.Topology = paralagg.TopologyFromAddrs(strings.Split(*peers, ","))
	}
	if *ckptEvery > 0 || *resume {
		cfg.CheckpointEvery = *ckptEvery
		cfg.Checkpoints = paralagg.NewFileCheckpointSinkKeep(*ckptDir, *ckptKeep)
		cfg.Resume = *resume
	}

	// Observability consumers: a Chrome-trace recorder, a live HTTP metrics
	// server, or both teed together. TCP children derive per-rank outputs so
	// gang members never clobber each other.
	var recorder *paralagg.TraceRecorder
	var liveSrv *paralagg.LiveServer
	var observers []paralagg.Observer
	if *tracePath != "" {
		recorder = paralagg.NewTraceRecorder()
		observers = append(observers, recorder)
	}
	if *metricsAddr != "" {
		addr := *metricsAddr
		if tcpTr != nil {
			addr, err = rankAddr(addr, *rank)
			if err != nil {
				log.Fatalf("-metrics-addr: %v", err)
			}
		}
		liveSrv, err = paralagg.StartLiveServer(addr)
		if err != nil {
			log.Fatalf("-metrics-addr: %v", err)
		}
		defer liveSrv.Close()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "serving /metrics, /vars, /debug/pprof on http://%s\n", liveSrv.Addr())
		}
		observers = append(observers, liveSrv)
	}
	cfg.Observer = paralagg.TeeObservers(observers...)

	// Build the (program, loader) pair, either from the textual frontend or
	// a built-in query, then run it — plainly or under supervision.
	var prog *paralagg.Program
	var load func(*paralagg.Rank) error
	if *programFile != "" {
		src, err := os.ReadFile(*programFile)
		if err != nil {
			log.Fatal(err)
		}
		prog, err = paralagg.ParseProgram(string(src))
		if err != nil {
			log.Fatal(err)
		}
		if *explain {
			plan, err := prog.Explain()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(plan)
			return
		}
		// Load the graph's edges into a relation named "edge" whose arity
		// the program declares (2 = unweighted, 3 = weighted).
		d := prog.Decl("edge")
		if d == nil {
			log.Fatal("program must declare an 'edge' relation to receive the graph")
		}
		load = func(rk *paralagg.Rank) error {
			return rk.LoadShare("edge", len(g.Edges), func(i int, emit func(paralagg.Tuple)) {
				e := g.Edges[i]
				if d.Arity >= 3 {
					emit(paralagg.Tuple{e.U, e.V, e.W})
				} else {
					emit(paralagg.Tuple{e.U, e.V})
				}
			})
		}
	} else {
		if !*quiet && !*jsonOut {
			worldRanks := *ranks
			if tcpTr != nil {
				worldRanks = tcpTr.Size()
			}
			fmt.Printf("%s on %v\nranks=%d subs=%d plan=%s\n\n", *query, g, worldRanks, *subs, *planName)
		}
		sources := g.Sources(*nsources, 1)
		switch *query {
		case "sssp":
			prog = queries.SSSPProgram()
			load = func(rk *paralagg.Rank) error { return queries.LoadSSSP(rk, g, sources) }
		case "cc":
			prog = queries.CCProgram()
			load = func(rk *paralagg.Rank) error { return queries.LoadCC(rk, g) }
		case "tc":
			prog = queries.TCProgram()
			load = func(rk *paralagg.Rank) error { return queries.LoadTC(rk, g) }
		case "pagerank":
			prog = queries.PageRankProgram(*iters, g.Nodes, 0.85)
			load = func(rk *paralagg.Rank) error { return queries.LoadPageRank(rk, g) }
		case "lsp":
			prog = queries.LspProgram()
			load = func(rk *paralagg.Rank) error { return queries.LoadSSSP(rk, g, sources) }
		default:
			fmt.Fprintf(os.Stderr, "unknown query %q (sssp, cc, tc, pagerank, lsp)\n", *query)
			os.Exit(2)
		}
	}

	if *serveAddr != "" {
		runServe(prog, cfg, load, *serveAddr, *quiet)
		return
	}

	var res *paralagg.Result
	if *supervise {
		var rep *paralagg.SuperviseReport
		res, rep, err = paralagg.Supervise(prog, paralagg.SuperviseConfig{
			Config:          cfg,
			MaxRestarts:     *maxRestarts,
			Degrade:         *degrade,
			RecoveryBackoff: *backoff,
			Logf: func(f string, a ...any) {
				fmt.Fprintf(os.Stderr, f+"\n", a...)
			},
		}, load, nil)
		if err != nil {
			log.Fatal(err)
		}
		if rep.RecoveryAttempts > 0 {
			fmt.Printf("supervised: %d recoveries, ranks lost %v, finished on %d ranks\n",
				rep.RecoveryAttempts, rep.RanksLost, rep.FinalRanks)
		}
	} else {
		res, err = paralagg.Exec(prog, cfg, load, nil)
		if err != nil {
			if tcpTr != nil {
				// A structured rank failure over TCP exits with code 3 so the
				// -spawn launcher can tell "peer died" from "bad invocation"
				// and respawn the gang with -resume. A peer lost during mesh
				// establishment counts too: the gang dies together.
				tcpTr.Kill()
				_, structured := paralagg.AsRankFailure(err)
				if structured || errors.Is(err, paralagg.ErrPeerUnreachable) {
					log.Printf("rank %d: %v", *rank, err)
					os.Exit(3)
				}
			}
			log.Fatal(err)
		}
	}
	if tcpTr != nil {
		tcpTr.Close()
	}

	// The trace is written even under -quiet: gang children each carry one
	// rank's track, so every member's file matters.
	if recorder != nil {
		out := *tracePath
		if tcpTr != nil {
			out = rankPath(out, *rank)
		}
		if err := recorder.WriteFile(out); err != nil {
			log.Fatalf("-trace: %v", err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "trace: %d spans written to %s\n", recorder.Spans(), out)
		}
	}

	if *quiet {
		return
	}
	if *jsonOut {
		doc, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", doc)
		return
	}
	fmt.Print(res.Summary())
	if res.MemPeakBytes > 0 {
		fmt.Printf("mem: peak=%d budget=%d (%.1f%%)\n",
			res.MemPeakBytes, *memBudget, 100*float64(res.MemPeakBytes)/float64(*memBudget))
	}
	if tcpTr != nil {
		n := tcpTr.Net()
		fmt.Printf("net: frames=%d/%d dialRetries=%d reconnects=%d retransmits=%d dups=%d hbMisses=%d crcErrors=%d stalls=%d outboxPeak=%d\n",
			n.FramesSent, n.FramesRecv, n.DialRetries, n.Reconnects, n.Retransmits, n.DupsDropped, n.HeartbeatMisses, n.CRCErrors, n.ThrottleStalls, n.OutboxPeakFrames)
	}
	fmt.Println("\nphase breakdown (simulated ms):")
	for _, ph := range metrics.PhaseNames {
		fmt.Printf("  %-14s %10.3f\n", ph, res.PhaseSeconds[ph]*1e3)
	}
}

// rankPath derives a per-rank output file from a shared -trace path by
// inserting ".rankN" before the extension: out.json -> out.rank2.json. Gang
// children forwarded the same flag value must not clobber one another.
func rankPath(path string, rank int) string {
	ext := ""
	if i := strings.LastIndexByte(path, '.'); i > strings.LastIndexByte(path, '/') {
		path, ext = path[:i], path[i:]
	}
	return fmt.Sprintf("%s.rank%d%s", path, rank, ext)
}

// rankAddr offsets a shared -metrics-addr port by the rank so every gang
// member serves its own endpoint. Port 0 (pick a free port) passes through.
func rankAddr(addr string, rank int) (string, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", err
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return "", fmt.Errorf("port %q is not numeric: %v", port, err)
	}
	if p == 0 {
		return addr, nil
	}
	return net.JoinHostPort(host, strconv.Itoa(p+rank)), nil
}

// runServe holds the converged relations resident and answers point queries
// and mutation batches over HTTP until the process is interrupted. The
// initial load is just the first Apply; every later /apply re-converges from
// the existing Δ instead of recomputing from zero.
func runServe(prog *paralagg.Program, cfg paralagg.Config, load func(*paralagg.Rank) error, addr string, quiet bool) {
	srv, err := paralagg.StartLiveServer(addr)
	if err != nil {
		log.Fatalf("-serve: %v", err)
	}
	defer srv.Close()
	cfg.Observer = paralagg.TeeObservers(cfg.Observer, srv)
	eng, err := paralagg.Open(cfg, prog)
	if err != nil {
		log.Fatalf("-serve: %v", err)
	}
	defer eng.Close()
	stats, err := eng.Apply(context.Background(), paralagg.Mutation{Load: load})
	if err != nil {
		log.Fatalf("-serve: initial fixpoint: %v", err)
	}
	eng.ServeLive(srv)
	if !quiet {
		fmt.Fprintf(os.Stderr, "converged in %d iterations; serving /query, /topk, /apply (plus /metrics, /vars, /debug/pprof) on http://%s\n",
			stats.Iterations, srv.Addr())
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if !quiet {
		es := eng.Stats()
		fmt.Fprintf(os.Stderr, "shutting down: %d mutation batches applied, %d queries answered\n", es.Applies, es.Queries)
	}
}

// runServingChaosSuite executes the serving differentials: every scenario's
// mutation batches stream into a long-lived engine at 1, 2, and 4 ranks, and
// after the initial load and every batch the resident relations must be
// bit-identical to a from-scratch recomputation over the same base facts.
// Incremental insert-only batches must also re-converge strictly cheaper
// than the from-scratch control — the engine's reason to exist.
func runServingChaosSuite() {
	failed := 0
	for _, sc := range chaos.ServingScenarios() {
		for _, ranks := range []int{1, 2, 4} {
			rep, err := chaos.ServingDifferential(sc, ranks)
			switch {
			case err != nil:
				fmt.Printf("FAIL %-11s ranks=%d: %v\n", sc.Name, ranks, err)
				failed++
				continue
			case !rep.Identical():
				fmt.Printf("FAIL %-11s ranks=%d: resident state diverged from recomputation\n", sc.Name, ranks)
				failed++
				continue
			case !rep.InsertsStrictlyCheaper():
				fmt.Printf("FAIL %-11s ranks=%d: an incremental insert batch was not cheaper than from-scratch\n", sc.Name, ranks)
				failed++
				continue
			}
			rounds, dropped := 0, uint64(0)
			for i := range rep.Batches {
				rounds += rep.Batches[i].InvalidationRounds
				dropped += rep.Batches[i].Dropped
			}
			fmt.Printf("ok   %-11s ranks=%d: %d batches bit-identical (invalidation rounds=%d dropped=%d)\n",
				sc.Name, ranks, len(rep.Batches), rounds, dropped)
		}
	}
	if failed > 0 {
		fmt.Printf("\n%d serving chaos checks failed\n", failed)
		os.Exit(1)
	}
	fmt.Println("\nall serving chaos checks passed")
}

// runChaosSuite executes the chaos harness's differential scenarios: each
// query runs fault-free, then with an injected mid-fixpoint crash —
// manually resumed, supervised at the same and smaller world sizes, and
// crashed repeatedly across recoveries; every recovered answer must match
// the fault-free one bit for bit.
func runChaosSuite() {
	failed := 0
	for _, sc := range chaos.Scenarios() {
		for _, ranks := range []int{2, 4} {
			rep, err := chaos.Differential(sc, ranks, 2, 3)
			switch {
			case err != nil:
				fmt.Printf("FAIL %-9s ranks=%d: %v\n", sc.Name, ranks, err)
				failed++
			case !rep.Identical():
				fmt.Printf("FAIL %-9s ranks=%d: recovered relations diverge from the fault-free run\n", sc.Name, ranks)
				failed++
			default:
				fmt.Printf("ok   %-9s ranks=%d: crash at iter 3, resumed, %d relations bit-identical (recovery %.3fms)\n",
					sc.Name, ranks, len(rep.Clean), rep.RecoverySeconds*1e3)
			}
		}
		// Supervised elastic recovery: same size, one rank down, half size.
		for _, restart := range []int{4, 3, 2} {
			rep, err := chaos.Elastic(sc, 4, 2, 3, restart)
			switch {
			case err != nil:
				fmt.Printf("FAIL %-9s 4->%d: %v\n", sc.Name, restart, err)
				failed++
			case !rep.Identical():
				fmt.Printf("FAIL %-9s 4->%d: recovered relations diverge from the fault-free run\n", sc.Name, restart)
				failed++
			default:
				fmt.Printf("ok   %-9s 4->%d: auto-recovered (%d attempt, remap %.3fms, recovery %.3fms)\n",
					sc.Name, restart, rep.RecoveryAttempts, rep.RemapSeconds*1e3, rep.RecoverySeconds*1e3)
			}
		}
		rep, err := chaos.Repeated(sc, 4, 2)
		switch {
		case err != nil:
			fmt.Printf("FAIL %-9s repeated: %v\n", sc.Name, err)
			failed++
		case !rep.Identical():
			fmt.Printf("FAIL %-9s repeated: recovered relations diverge from the fault-free run\n", sc.Name)
			failed++
		default:
			fmt.Printf("ok   %-9s repeated: two crashes across recoveries, %d recoveries, ranks lost %v\n",
				sc.Name, rep.RecoveryAttempts, rep.RanksLost)
		}
		if err := chaos.StuckCollective(sc, 4, 500*time.Millisecond); err == nil {
			fmt.Printf("FAIL %-9s: hung collective produced no error\n", sc.Name)
			failed++
		} else if _, ok := paralagg.AsRankFailure(err); !ok {
			fmt.Printf("FAIL %-9s: hung collective error is unstructured: %v\n", sc.Name, err)
			failed++
		} else {
			fmt.Printf("ok   %-9s: stuck collective surfaced as structured rank failure\n", sc.Name)
		}
	}
	if failed > 0 {
		fmt.Printf("\n%d chaos checks failed\n", failed)
		os.Exit(1)
	}
	fmt.Println("\nall chaos checks passed")
}

// runNetChaosSuite executes the network chaos scenarios over the real TCP
// transport: wire faults the transport must repair transparently (slow
// links, connection resets, corrupted frames — results bit-identical to the
// in-process run), a network partition that must surface as a structured
// failure on every rank, and a killed rank process recovered by the
// supervisor from shared checkpoints.
func runNetChaosSuite() {
	failed := 0
	for _, sc := range chaos.Scenarios() {
		for _, ranks := range []int{2, 4} {
			rep, err := chaos.TCPDifferential(sc, ranks, chaos.RepairableFaults(ranks))
			switch {
			case err != nil:
				fmt.Printf("FAIL %-9s tcp ranks=%d: %v\n", sc.Name, ranks, err)
				failed++
			case !rep.Identical():
				fmt.Printf("FAIL %-9s tcp ranks=%d: wire faults changed the answer\n", sc.Name, ranks)
				failed++
			default:
				if err := chaos.VerifyNetStats(rep.Net); err != nil {
					fmt.Printf("FAIL %-9s tcp ranks=%d: %v\n", sc.Name, ranks, err)
					failed++
					continue
				}
				fmt.Printf("ok   %-9s tcp ranks=%d: reset+corruption+slowlink repaired, bit-identical (reconnects=%d retransmits=%d crcErrors=%d)\n",
					sc.Name, ranks, rep.Net.Reconnects, rep.Net.Retransmits, rep.Net.CRCErrors)
			}
		}
		if err := chaos.TCPPartition(sc, 3); err != nil {
			fmt.Printf("FAIL %-9s tcp partition: %v\n", sc.Name, err)
			failed++
		} else {
			fmt.Printf("ok   %-9s tcp partition: every rank surfaced a structured unreachable-peer failure\n", sc.Name)
		}
		rep, err := chaos.TCPKillRecovery(sc, 3, 2, 3)
		switch {
		case err != nil:
			fmt.Printf("FAIL %-9s tcp kill: %v\n", sc.Name, err)
			failed++
		case !rep.Identical():
			fmt.Printf("FAIL %-9s tcp kill: supervised recovery diverged from the fault-free answer\n", sc.Name)
			failed++
		default:
			fmt.Printf("ok   %-9s tcp kill: process killed mid-fixpoint, %d supervised recovery, bit-identical\n",
				sc.Name, rep.RecoveryAttempts)
		}
	}
	if failed > 0 {
		fmt.Printf("\n%d network chaos checks failed\n", failed)
		os.Exit(1)
	}
	fmt.Println("\nall network chaos checks passed")
}

// runIntegrityChaosSuite executes the state-integrity scenarios: silent
// in-memory bit flips every rank must detect within one iteration and the
// supervisor must heal by rollback, checkpoint bit rot recovery must
// quarantine and fall back exactly one generation, and a TCP gang must
// agree on the divergence. Every recovered answer must match the
// fault-free one bit for bit.
func runIntegrityChaosSuite() {
	failed := 0
	for _, sc := range chaos.Scenarios() {
		for _, ranks := range []int{2, 4} {
			rep, err := chaos.CorruptionDifferential(sc, ranks, 2, 3)
			switch {
			case err != nil:
				fmt.Printf("FAIL %-9s state ranks=%d: %v\n", sc.Name, ranks, err)
				failed++
			case !rep.Identical():
				fmt.Printf("FAIL %-9s state ranks=%d: rollback recovery diverged from the fault-free run\n", sc.Name, ranks)
				failed++
			default:
				fmt.Printf("ok   %-9s state ranks=%d: flip detected at iter %d (%s check), %d rollback(s), bit-identical\n",
					sc.Name, ranks, rep.Divergence.Iter, rep.Divergence.Check, rep.DivergenceRollbacks)
			}
		}
		rep, err := chaos.CheckpointCorruptionDifferential(sc, 2, 2, 5)
		switch {
		case err != nil:
			fmt.Printf("FAIL %-9s ckpt-rot: %v\n", sc.Name, err)
			failed++
		case !rep.Identical():
			fmt.Printf("FAIL %-9s ckpt-rot: fallback recovery diverged from the fault-free run\n", sc.Name)
			failed++
		default:
			fmt.Printf("ok   %-9s ckpt-rot: rotten generation quarantined (%d), fell back to iter %d, bit-identical\n",
				sc.Name, rep.QuarantinedDelta, rep.FallbackIter)
		}
		if err := chaos.TCPCorruptionDetection(sc, 2, 3); err != nil {
			fmt.Printf("FAIL %-9s tcp state: %v\n", sc.Name, err)
			failed++
		} else {
			fmt.Printf("ok   %-9s tcp state: every rank agreed on the divergence over real sockets\n", sc.Name)
		}
	}
	if failed > 0 {
		fmt.Printf("\n%d integrity chaos checks failed\n", failed)
		os.Exit(1)
	}
	fmt.Println("\nall integrity chaos checks passed")
}

// runOverloadChaosSuite executes the overload scenarios: a TCP receiver
// that cannot keep up (flow control must throttle senders inside the window
// without changing the answer or tripping the watchdog), phantom memory
// pressure into the soft band (scratch shed, run completes inside the
// budget) and past the budget (structured ErrMemoryBudget on every rank,
// supervised recovery bit-identical), and a full checkpoint device (the
// rank degrades to in-memory checkpointing instead of aborting).
func runOverloadChaosSuite() {
	failed := 0
	for _, sc := range chaos.Scenarios() {
		const window = 8
		rep, err := chaos.TCPSlowConsumer(sc, 3, window)
		switch {
		case err != nil:
			fmt.Printf("FAIL %-9s tcp slow-consumer: %v\n", sc.Name, err)
			failed++
		case !rep.Identical():
			fmt.Printf("FAIL %-9s tcp slow-consumer: throttled run diverged from the in-process answer\n", sc.Name)
			failed++
		default:
			fmt.Printf("ok   %-9s tcp slow-consumer: throttled inside the window, bit-identical (stalls=%d outboxPeak=%d/%d)\n",
				sc.Name, rep.Net.ThrottleStalls, rep.Net.OutboxPeakFrames, window)
		}
		for _, ranks := range []int{2, 4} {
			rep, err := chaos.MemPressureSoft(sc, ranks)
			switch {
			case err != nil:
				fmt.Printf("FAIL %-9s mem-soft ranks=%d: %v\n", sc.Name, ranks, err)
				failed++
			case !rep.Identical():
				fmt.Printf("FAIL %-9s mem-soft ranks=%d: soft pressure changed the answer\n", sc.Name, ranks)
				failed++
			default:
				fmt.Printf("ok   %-9s mem-soft ranks=%d: %d shed responses, peak %d of %d budgeted bytes, bit-identical\n",
					sc.Name, ranks, rep.SoftEvents, rep.MemPeakBytes, rep.Budget)
			}
		}
		rep2, err := chaos.MemPressureHard(sc, 4, 2)
		switch {
		case err != nil:
			fmt.Printf("FAIL %-9s mem-hard: %v\n", sc.Name, err)
			failed++
		case !rep2.Identical():
			fmt.Printf("FAIL %-9s mem-hard: supervised recovery diverged from the fault-free answer\n", sc.Name)
			failed++
		default:
			fmt.Printf("ok   %-9s mem-hard: structured budget failure at iter %d, %d supervised recovery, bit-identical\n",
				sc.Name, rep2.BudgetErr.Iter, rep2.RecoveryAttempts)
		}
		rep3, err := chaos.DiskFullDegradation(sc, 4, 2)
		switch {
		case err != nil:
			fmt.Printf("FAIL %-9s disk-full: %v\n", sc.Name, err)
			failed++
		case !rep3.Identical():
			fmt.Printf("FAIL %-9s disk-full: degraded checkpointing changed the answer\n", sc.Name)
			failed++
		default:
			fmt.Printf("ok   %-9s disk-full: degraded to in-memory checkpointing (%d), run completed bit-identical\n",
				sc.Name, rep3.DegradationsDelta)
		}
	}
	if failed > 0 {
		fmt.Printf("\n%d overload chaos checks failed\n", failed)
		os.Exit(1)
	}
	fmt.Println("\nall overload chaos checks passed")
}

// runRecoveryChaosSuite executes the hot-replacement recovery differentials:
// a TCP gang loses its highest rank mid-exchange, the survivors park in
// place with their in-memory state intact, and a replacement process rejoins
// at the next membership epoch, restores only its own shard, and splices
// into the survivors' retained send histories. The repaired answer must be
// bit-identical to the fault-free in-process run at 4 and 8 ranks (plus the
// skewed sub-bucket scenario), and the timed control arm — the same crash
// repaired by a whole-world restart — must cost strictly more, which is the
// point of keeping the survivors alive.
func runRecoveryChaosSuite() {
	failed := 0
	mttrMS := func(rep *chaos.RecoveryReport) float64 {
		return float64(rep.MTTR.Microseconds()) / 1e3
	}
	scs := chaos.Scenarios()
	sssp, skew := scs[0], scs[3]

	var hot4 *chaos.RecoveryReport
	for _, ranks := range []int{4, 8} {
		rep, err := chaos.TCPHotReplace(sssp, ranks, 2, 5)
		switch {
		case err != nil:
			fmt.Printf("FAIL %-9s hot-replace ranks=%d: %v\n", sssp.Name, ranks, err)
			failed++
		case !rep.Identical():
			fmt.Printf("FAIL %-9s hot-replace ranks=%d: replaced gang diverged from the fault-free answer\n", sssp.Name, ranks)
			failed++
		default:
			fmt.Printf("ok   %-9s hot-replace ranks=%d: rank %d killed mid-exchange, 1 replacement, bit-identical (MTTR %.1fms)\n",
				sssp.Name, ranks, ranks-1, mttrMS(rep))
			if ranks == 4 {
				hot4 = rep
			}
		}
	}
	rep, err := chaos.TCPHotReplace(skew, 4, 2, 5)
	switch {
	case err != nil:
		fmt.Printf("FAIL %-9s hot-replace ranks=4: %v\n", skew.Name, err)
		failed++
	case !rep.Identical():
		fmt.Printf("FAIL %-9s hot-replace ranks=4: replaced gang diverged from the fault-free answer\n", skew.Name)
		failed++
	default:
		fmt.Printf("ok   %-9s hot-replace ranks=4: skewed sub-buckets survived the replacement, bit-identical (MTTR %.1fms)\n",
			skew.Name, mttrMS(rep))
	}

	// Control arm: the same crash repaired the old way. Hot replacement only
	// earns its complexity if it is strictly cheaper.
	full, err := chaos.TCPFullRestart(sssp, 4, 2, 5)
	switch {
	case err != nil:
		fmt.Printf("FAIL %-9s full-restart ranks=4: %v\n", sssp.Name, err)
		failed++
	case !full.Identical():
		fmt.Printf("FAIL %-9s full-restart ranks=4: restarted gang diverged from the fault-free answer\n", sssp.Name)
		failed++
	default:
		fmt.Printf("ok   %-9s full-restart ranks=4: whole-world restart control arm, bit-identical (MTTR %.1fms)\n",
			sssp.Name, mttrMS(full))
		if hot4 != nil && hot4.MTTR >= full.MTTR {
			fmt.Printf("FAIL %-9s mttr: hot replacement (%.1fms) did not beat the full restart (%.1fms)\n",
				sssp.Name, mttrMS(hot4), mttrMS(full))
			failed++
		} else if hot4 != nil {
			fmt.Printf("ok   %-9s mttr: hot replacement %.1fms vs full restart %.1fms (%.0fx cheaper)\n",
				sssp.Name, mttrMS(hot4), mttrMS(full), float64(full.MTTR)/float64(hot4.MTTR))
		}
	}

	if failed > 0 {
		fmt.Printf("\n%d recovery chaos checks failed\n", failed)
		os.Exit(1)
	}
	fmt.Println("\nall recovery chaos checks passed")
}
