package paralagg

import "encoding/json"

// resultJSON pins the machine-readable field names of Result. The wire
// names are part of the public contract — tooling parses them — so they are
// spelled out here instead of being derived from the Go field names.
type resultJSON struct {
	Ranks            int                  `json:"ranks"`
	StratumIters     []int                `json:"stratum_iters"`
	Iterations       int                  `json:"iterations"`
	Counts           map[string]uint64    `json:"counts"`
	SimSeconds       float64              `json:"sim_seconds"`
	PhaseSeconds     map[string]float64   `json:"phase_seconds"`
	IterPhaseSeconds []map[string]float64 `json:"iter_phase_seconds"`
	CommBytes        int64                `json:"comm_bytes"`
	CommMsgs         int64                `json:"comm_msgs"`
	MemPeakBytes     int64                `json:"mem_peak_bytes,omitempty"`
}

// JSON renders the result as the stable machine-readable document
// (the typed accessor over the wire format; cmd/paralagg -json prints
// exactly this).
func (r *Result) JSON() ([]byte, error) { return json.Marshal(r) }

// MarshalJSON implements json.Marshaler with stable, documented field names
// (including the per-phase and per-iteration breakdowns), so results can be
// consumed by dashboards and scripts: cmd/paralagg -json prints exactly
// this document.
func (r *Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(resultJSON{
		Ranks:            r.Ranks,
		StratumIters:     r.StratumIters,
		Iterations:       r.Iterations,
		Counts:           r.Counts,
		SimSeconds:       r.SimSeconds,
		PhaseSeconds:     r.PhaseSeconds,
		IterPhaseSeconds: r.IterPhaseSeconds,
		CommBytes:        r.CommBytes,
		CommMsgs:         r.CommMsgs,
		MemPeakBytes:     r.MemPeakBytes,
	})
}

// UnmarshalJSON accepts the document MarshalJSON produces, so results
// round-trip through files and pipes.
func (r *Result) UnmarshalJSON(data []byte) error {
	var rj resultJSON
	if err := json.Unmarshal(data, &rj); err != nil {
		return err
	}
	*r = Result{
		Ranks:            rj.Ranks,
		StratumIters:     rj.StratumIters,
		Iterations:       rj.Iterations,
		Counts:           rj.Counts,
		SimSeconds:       rj.SimSeconds,
		PhaseSeconds:     rj.PhaseSeconds,
		IterPhaseSeconds: rj.IterPhaseSeconds,
		CommBytes:        rj.CommBytes,
		CommMsgs:         rj.CommMsgs,
		MemPeakBytes:     rj.MemPeakBytes,
	}
	return nil
}
