package paralagg_test

// Serving benchmarks: sustained mutate+query load against a long-lived
// engine. Each op applies one mutation batch (alternating insert and delete
// of a shuttle edge set, so the resident state returns to a steady cycle)
// and then answers a burst of point lookups. Beyond the usual ns/op the
// benchmarks report the serving numbers the design cares about: sustained
// qps over the whole run, p99 point-query latency, and the mean
// re-convergence iterations per mutation batch. `make bench-serving`
// regenerates BENCH_serving.json from these.

import (
	"context"
	"sort"
	"testing"
	"time"

	"paralagg"
	"paralagg/internal/graph"
	"paralagg/internal/queries"
)

// queriesPerBatch is the point-lookup burst interleaved with every mutation.
const queriesPerBatch = 16

func openServingBench(b *testing.B, ranks int) *paralagg.Engine {
	b.Helper()
	g := graph.Grid("serve-bench", 8, 8, 8, 7)
	eng, err := paralagg.Open(paralagg.Config{Ranks: ranks, Subs: 4}, queries.SSSPProgram())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Apply(context.Background(), paralagg.Mutation{
		Load: func(rk *paralagg.Rank) error { return queries.LoadSSSP(rk, g, []uint64{0, 5}) },
	}); err != nil {
		eng.Close()
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })
	return eng
}

func reportP99(b *testing.B, lat []time.Duration) {
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns")
}

// benchServing drives b.N mutate+query cycles against one resident engine.
func benchServing(b *testing.B, ranks int) {
	eng := openServingBench(b, ranks)
	ctx := context.Background()
	shuttle := map[string][]paralagg.Tuple{
		"edge": {{0, 63, 2}, {0, 36, 1}, {9, 54, 1}},
	}
	lat := make([]time.Duration, 0, b.N*queriesPerBatch)
	var reconv int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := paralagg.Mutation{Insert: shuttle}
		if i%2 == 1 {
			m = paralagg.Mutation{Delete: shuttle}
		}
		st, err := eng.Apply(ctx, m)
		if err != nil {
			b.Fatal(err)
		}
		reconv += int64(st.Iterations)
		for k := 0; k < queriesPerBatch; k++ {
			t0 := time.Now()
			if _, err := eng.Query(ctx, paralagg.QuerySpec{
				Relation: "spath", Key: []paralagg.Value{0, paralagg.Value((i*queriesPerBatch + k) % 64)},
			}); err != nil {
				b.Fatal(err)
			}
			lat = append(lat, time.Since(t0))
		}
	}
	el := b.Elapsed()
	if el > 0 {
		b.ReportMetric(float64(b.N*(1+queriesPerBatch))/el.Seconds(), "qps")
	}
	b.ReportMetric(float64(reconv)/float64(b.N), "reconv-iters/op")
	reportP99(b, lat)
}

func BenchmarkServingMutateQuery2(b *testing.B) { benchServing(b, 2) }
func BenchmarkServingMutateQuery4(b *testing.B) { benchServing(b, 4) }

// BenchmarkServingPointQuery isolates the read path: pure point lookups
// against converged resident state, no mutations in flight.
func BenchmarkServingPointQuery(b *testing.B) {
	eng := openServingBench(b, 4)
	ctx := context.Background()
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := eng.Query(ctx, paralagg.QuerySpec{
			Relation: "spath", Key: []paralagg.Value{0, paralagg.Value(i % 64)},
		}); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
	}
	el := b.Elapsed()
	if el > 0 {
		b.ReportMetric(float64(b.N)/el.Seconds(), "qps")
	}
	reportP99(b, lat)
}
