package paralagg

import (
	"context"

	"paralagg/internal/live"
)

// LiveQuery implements the live server's query backend: /query and /topk
// route here. It adapts wire types to QuerySpec and never runs a fixpoint.
func (e *Engine) LiveQuery(relation string, key []uint64, limit, orderBy int, desc, countOnly bool) (live.QueryAnswer, error) {
	spec := QuerySpec{
		Relation: relation, Limit: limit, OrderBy: orderBy,
		Desc: desc, CountOnly: countOnly,
	}
	for _, v := range key {
		spec.Key = append(spec.Key, Value(v))
	}
	qr, err := e.Query(context.Background(), spec)
	if err != nil {
		return live.QueryAnswer{}, err
	}
	ans := live.QueryAnswer{Found: qr.Found, Count: qr.Count}
	for _, v := range qr.Value {
		ans.Value = append(ans.Value, uint64(v))
	}
	for _, t := range qr.Tuples {
		row := make([]uint64, len(t))
		for i, v := range t {
			row[i] = uint64(v)
		}
		ans.Tuples = append(ans.Tuples, row)
	}
	return ans, nil
}

// LiveApply implements the live server's mutation backend: /apply routes
// here, blocking until the engine re-converges.
func (e *Engine) LiveApply(insert, del map[string][][]uint64) (int, bool, error) {
	m := Mutation{}
	if len(insert) > 0 {
		m.Insert = map[string][]Tuple{}
		for name, rows := range insert {
			m.Insert[name] = wireTuples(rows)
		}
	}
	if len(del) > 0 {
		m.Delete = map[string][]Tuple{}
		for name, rows := range del {
			m.Delete[name] = wireTuples(rows)
		}
	}
	stats, err := e.Apply(context.Background(), m)
	if err != nil {
		return 0, false, err
	}
	return stats.Iterations, stats.Incremental, nil
}

func wireTuples(rows [][]uint64) []Tuple {
	out := make([]Tuple, 0, len(rows))
	for _, row := range rows {
		t := make(Tuple, len(row))
		for i, v := range row {
			t[i] = Value(v)
		}
		out = append(out, t)
	}
	return out
}

// ServeLive attaches the engine to a live server: /query, /topk, and /apply
// begin answering from the engine's resident state (alongside the server's
// /metrics, /vars, and pprof surfaces). Pass the same server as
// Config.Observer when Opening the engine to stream its counters too.
func (e *Engine) ServeLive(s *LiveServer) {
	s.AttachQuerier(e)
	s.AttachApplier(e)
}
