package paralagg

import (
	"fmt"
	"time"

	"paralagg/internal/mpi"
	"paralagg/internal/obs"
	"paralagg/internal/supervisor"
)

// SuperviseConfig extends Config with the elastic-recovery policy. The
// embedded Config must carry a CheckpointSink (and normally a positive
// CheckpointEvery — without periodic saves a crash can only restart from
// scratch); its Ranks and Resume fields describe the FIRST attempt, later
// attempts are managed by the supervisor.
type SuperviseConfig struct {
	Config

	// MaxRestarts bounds the recoveries before Supervise gives up
	// (default 3).
	MaxRestarts int
	// Degrade restarts with the surviving rank count instead of the same
	// world size; the checkpoint is remapped through the smaller layout.
	Degrade bool
	// MinRanks floors degradation (default 1).
	MinRanks int
	// RecoveryBackoff is the first restart's delay (default 10ms), doubling
	// per restart up to RecoveryBackoffMax (default 2s) with deterministic
	// ±50% jitter seeded by BackoffSeed.
	RecoveryBackoff    time.Duration
	RecoveryBackoffMax time.Duration
	BackoffSeed        int64
	// Logf receives one line per supervisor lifecycle event (nil = silent).
	Logf func(format string, args ...any)

	// FaultsFor overrides the fault plan per attempt (0 = initial run). By
	// default Config.Faults applies to attempt 0 only: fault-plan counters
	// reset with each fresh world, so re-applying the plan would re-kill the
	// same rank forever. Chaos tests use FaultsFor to schedule repeated
	// crashes across recoveries.
	FaultsFor func(attempt int) *FaultPlan
	// RanksFor pins each restart's world size (overrides Degrade); restart
	// is the restart ordinal (1 = first recovery), prev the failed world's
	// size, lost the ranks that died.
	RanksFor func(restart, prev int, lost []int) int
}

// SuperviseReport describes how a supervised run unfolded.
type SuperviseReport struct {
	// RecoveryAttempts counts the restarts performed.
	RecoveryAttempts int
	// RanksLost lists every rank death across all incidents, in order.
	RanksLost []int
	// FinalRanks is the world size of the last attempt.
	FinalRanks int
	// AttemptRanks lists each attempt's world size, in order.
	AttemptRanks []int
	// DivergenceRollbacks counts incidents caused by detected state
	// divergence (silent corruption caught by the integrity fingerprints);
	// each rolled the computation back to the last verified checkpoint.
	DivergenceRollbacks int
	// RestartsFromScratch counts recovery attempts that found no usable
	// checkpoint — none ever written, or every retained generation failed
	// validation — and restarted from the initial state instead of resuming.
	RestartsFromScratch int
}

// Supervise runs prog under elastic supervision: Exec is retried across rank
// failures, each retry tearing down the poisoned world, rebuilding a fresh
// one (same size, or degraded/pinned per config), restoring the latest
// agreed checkpoint through the world-size-independent remap path, and
// re-entering the fixpoint. Non-fault errors and exhausted restart budgets
// are terminal. The returned Result is the successful attempt's; the report
// is never nil.
func Supervise(prog *Program, cfg SuperviseConfig, load func(*Rank) error, inspect func(*Rank) error) (*Result, *SuperviseReport, error) {
	rep := &SuperviseReport{}
	if cfg.Checkpoints == nil {
		return nil, rep, fmt.Errorf("paralagg: Supervise needs Config.Checkpoints — without a sink there is nothing to recover from")
	}

	var final *Result
	// Lifecycle events: every supervisor decision (restart, rollback,
	// degrade, scratch, gave-up) streams to the Observer as it happens, so
	// recovery is visible live instead of only in the final report.
	emit := func(action string, restart, nextRanks int, lost []int) {
		if cfg.Observer == nil {
			return
		}
		e := obs.Get()
		e.Kind = obs.KindSupervisor
		e.Name = action
		e.Count = uint64(restart)
		e.Rank = -1
		if len(lost) == 1 {
			e.Rank = lost[0]
		}
		e.Ranks = nextRanks
		e.End = time.Now().UnixNano()
		obs.Emit(cfg.Observer, e)
	}
	scfg := supervisor.Config{
		MaxRestarts: cfg.MaxRestarts,
		Degrade:     cfg.Degrade,
		MinRanks:    cfg.MinRanks,
		Backoff:     cfg.RecoveryBackoff,
		BackoffMax:  cfg.RecoveryBackoffMax,
		Seed:        cfg.BackoffSeed,
		NextRanks:   cfg.RanksFor,
		Notify:      emit,
		Logf:        cfg.Logf,
	}
	srep, err := supervisor.Run(cfg.ranks(), scfg, func(attempt, ranks int, resume bool) error {
		c := cfg.Config
		c.Ranks = ranks
		// Re-register attempt-aware observers (trace recorders open a new
		// process group, the live server advances its attempt gauge and
		// resets per-run counters) so each restart is observed cleanly.
		if aa, ok := c.Observer.(obs.AttemptAware); ok {
			aa.OnAttempt(attempt)
		}
		switch {
		case cfg.FaultsFor != nil:
			c.Faults = cfg.FaultsFor(attempt)
		case attempt > 0:
			c.Faults = nil
		}
		if resume {
			// Resume only when a complete, validating checkpoint set exists:
			// a crash before the first save — or corruption of every retained
			// generation — restarts from scratch. A sink error is surfaced,
			// not silently treated as "no checkpoint", so an operator can
			// tell media failure from a genuinely empty sink.
			pos, ok, cerr := c.Checkpoints.LatestValid()
			c.Resume = ok
			switch {
			case cerr != nil:
				rep.RestartsFromScratch++
				emit("scratch", attempt, ranks, nil)
				if cfg.Logf != nil {
					cfg.Logf("supervise: attempt=%d checkpoint scan failed (%v) — restarting from scratch", attempt, cerr)
				}
			case !ok:
				rep.RestartsFromScratch++
				emit("scratch", attempt, ranks, nil)
				if cfg.Logf != nil {
					cfg.Logf("supervise: attempt=%d no valid checkpoint generation — restarting from scratch", attempt)
				}
			default:
				if cfg.Logf != nil {
					cfg.Logf("supervise: attempt=%d resuming from checkpoint (stratum=%d iter=%d ranks=%d)", attempt, pos.Stratum, pos.Iter, pos.Ranks)
				}
			}
		}
		res, err := Exec(prog, c, load, inspect)
		if err != nil {
			return err
		}
		final = res
		return nil
	})

	rep.RecoveryAttempts = srep.RecoveryAttempts
	rep.FinalRanks = srep.FinalRanks
	rep.DivergenceRollbacks = srep.DivergenceRollbacks
	for _, at := range srep.Attempts {
		rep.AttemptRanks = append(rep.AttemptRanks, at.Ranks)
		rep.RanksLost = append(rep.RanksLost, at.Lost...)
	}
	return final, rep, err
}

// RankFailures collects every distinct rank failure in an Exec error, sorted
// by rank — a multi-rank incident joins several ErrRankFailed values and
// AsRankFailure only surfaces the first.
func RankFailures(err error) []*ErrRankFailed { return mpi.RankFailures(err) }
