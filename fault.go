package paralagg

import (
	"errors"

	"paralagg/internal/mpi"
	"paralagg/internal/ra"
	"paralagg/internal/resource"
)

// Fault tolerance surface: deterministic fault injection into the simulated
// runtime, structured rank-failure errors, and checkpoint sinks for
// crash/restart. See Config.Faults, Config.Watchdog, Config.CheckpointEvery
// and Config.Resume for how these plug into Exec.

// FaultPlan is a seeded, deterministic schedule of injected faults: rank
// crashes, stuck collectives, and dropped / delayed / corrupted messages.
// The same plan against the same program yields the same failure.
type FaultPlan = mpi.FaultPlan

// Fault specs for FaultPlan.
type (
	// Crash kills a rank when it enters a matching communication op.
	Crash = mpi.Crash
	// Hang makes a rank block forever in a matching op (watchdog fodder).
	Hang = mpi.Hang
	// Drop silently discards a fraction of point-to-point messages.
	Drop = mpi.Drop
	// Delay sleeps a fraction of point-to-point messages before delivery.
	Delay = mpi.Delay
	// Corrupt flips bits in one word of a matching send's payload.
	Corrupt = mpi.Corrupt
)

// AnyIter in a fault spec matches every iteration.
const AnyIter = mpi.AnyIter

// State-integrity fault specs for FaultPlan (chaos coverage for the
// divergence detector and checkpoint validation).
type (
	// StateCorrupt flips bits in one stored tuple of a relation on one rank
	// at the top of a fixpoint iteration — a simulated silent memory error.
	// With Config.Integrity set the next convergence agreement detects it.
	StateCorrupt = mpi.StateCorrupt
	// CkptCorrupt flips one payload byte of the rank's newest checkpoint
	// file right after it is written — simulated media bit rot. Validation
	// quarantines the generation and recovery falls back one generation.
	CkptCorrupt = mpi.CkptCorrupt
)

// Overload fault specs for FaultPlan (chaos coverage for the memory budget
// ladder and the checkpoint degradation path).
type (
	// MemPressure charges a rank's memory accountant a one-time phantom
	// byte amount at the top of an iteration — deterministic budget
	// pressure without burning host memory. With Config.MemBudget set the
	// pressure ladder responds exactly as it would to real growth.
	MemPressure = mpi.MemPressure
	// DiskFull makes a rank's checkpoint save at the matching iteration
	// fail as if the device were full; the run degrades to in-memory
	// checkpointing with a warning instead of aborting.
	DiskFull = mpi.DiskFull
)

// ErrMemoryBudget reports a hard memory-budget violation: the rank's
// accounted usage reached Config.MemBudget and the iteration was failed
// structurally (inside an ErrRankFailed) rather than allowed to OOM.
type ErrMemoryBudget = resource.ErrMemoryBudget

// AsMemoryBudget extracts the structured budget violation from an Exec
// error, if one is present (however deeply joined or wrapped).
func AsMemoryBudget(err error) (*ErrMemoryBudget, bool) {
	var mb *ErrMemoryBudget
	ok := errors.As(err, &mb)
	return mb, ok
}

// ErrCheckpointStorage reports a checkpoint save that persistent storage
// refused even after freeing space (device full, short write); the partial
// file was quarantined aside as .bad and the run degraded to in-memory
// checkpointing.
type ErrCheckpointStorage = ra.ErrCheckpointStorage

// AsCheckpointStorage extracts the structured storage failure from an
// error chain.
func AsCheckpointStorage(err error) (*ErrCheckpointStorage, bool) {
	return ra.AsCheckpointStorage(err)
}

// CheckpointDegradations reports how many fixpoint runs in this process
// fell back to in-memory checkpointing after persistent storage failed.
func CheckpointDegradations() int64 { return ra.CheckpointDegradations() }

// ErrStateDiverged reports that a relation's replicated state went out of
// agreement across ranks: the per-iteration fingerprint Allreduce saw
// inconsistent digests. Every rank of the world observes the same divergence
// in the same iteration.
type ErrStateDiverged = mpi.ErrStateDiverged

// AsStateDivergence extracts the structured divergence report from an Exec
// error, if one is present (however deeply joined or wrapped).
func AsStateDivergence(err error) (*ErrStateDiverged, bool) { return mpi.AsStateDivergence(err) }

// ErrRankFailed reports which rank failed, in which operation, at which
// fixpoint iteration. Every rank's error from a failed Exec wraps one.
type ErrRankFailed = mpi.ErrRankFailed

// Failure causes distinguishable with errors.Is.
var (
	// ErrInjectedCrash marks failures produced by a FaultPlan Crash spec.
	ErrInjectedCrash = mpi.ErrInjectedCrash
	// ErrWatchdogTimeout marks ranks the collective watchdog declared dead.
	ErrWatchdogTimeout = mpi.ErrWatchdogTimeout
	// ErrRecvTimeout marks a receive unmatched past the watchdog timeout
	// (dropped message or vanished sender).
	ErrRecvTimeout = mpi.ErrRecvTimeout
	// ErrPeerUnreachable marks a rank a networked transport's failure
	// detector declared dead after its heartbeats stopped.
	ErrPeerUnreachable = mpi.ErrPeerUnreachable
	// ErrCorruptMessage marks a message whose CRC32C verification failed:
	// the payload was altered between send and receive.
	ErrCorruptMessage = mpi.ErrCorruptMessage
)

// Transport is the wire a distributed execution runs over (Config.Transport):
// one process per rank, real sockets between them. internal/transport/tcp
// implements it with retry/backoff connection establishment, CRC32C-framed
// messages, reconnect-with-retransmission, and heartbeat failure detection.
type Transport = mpi.Transport

// NetStats carries a networked transport's robustness counters (dial
// retries, reconnects, retransmits, duplicate drops, heartbeat misses,
// CRC rejections).
type NetStats = mpi.NetStats

// Topology describes where ranks live relative to each other — a host/rack
// grouping plus optional per-link costs (Config.Topology). The tree and ring
// collective schedules shape themselves around it, and the cost model's
// cross-host surcharges price its expensive links. Build one with
// ParseTopologyFile, TopologyFromHosts, or TopologyFromAddrs.
type Topology = mpi.Topology

// ParseTopologyFile reads a topology description ("host <rank> <name>" and
// "cost <hostA> <hostB> <x>" directives) for a world of the given size.
func ParseTopologyFile(path string, size int) (*Topology, error) {
	return mpi.ParseTopologyFile(path, size)
}

// TopologyFromHosts builds a topology from a per-rank host-name list.
func TopologyFromHosts(hostnames []string) *Topology { return mpi.TopologyFromHosts(hostnames) }

// TopologyFromAddrs derives a topology from a gang's peer address list:
// ranks whose "host:port" addresses share a host part share a group.
func TopologyFromAddrs(addrs []string) *Topology { return mpi.TopologyFromAddrs(addrs) }

// AsRankFailure extracts the structured rank failure from an Exec error, if
// one is present (however deeply joined or wrapped).
func AsRankFailure(err error) (*ErrRankFailed, bool) { return mpi.AsRankFailure(err) }

// CheckpointSink stores verified, multi-generation fixpoint snapshots per
// rank. Every Save appends a new generation; validation happens on read, so
// a corrupted newest generation degrades recovery by one generation instead
// of losing it.
type CheckpointSink = ra.CheckpointSink

// Checkpoint is one rank's saved fixpoint position.
type Checkpoint = ra.Checkpoint

// Position identifies one agreed checkpoint generation: the (stratum, iter,
// ranks) coordinate every rank's snapshot must match.
type Position = ra.Position

// ErrNoCheckpoint reports a Resume with an empty sink (or one whose every
// generation failed validation).
var ErrNoCheckpoint = ra.ErrNoCheckpoint

// DefaultCheckpointKeep is the number of checkpoint generations a sink
// retains per rank when no explicit keep count is configured.
const DefaultCheckpointKeep = ra.DefaultCheckpointKeep

// NewMemoryCheckpointSink returns an in-process sink: it survives a crashed
// world (restart within the same process) but not a process restart. It
// retains DefaultCheckpointKeep generations per rank.
func NewMemoryCheckpointSink() CheckpointSink { return ra.NewMemoryCheckpointSink() }

// NewMemoryCheckpointSinkKeep is NewMemoryCheckpointSink with an explicit
// per-rank generation retention count (keep < 1 means DefaultCheckpointKeep).
func NewMemoryCheckpointSinkKeep(keep int) CheckpointSink {
	return ra.NewMemoryCheckpointSinkKeep(keep)
}

// NewFileCheckpointSink returns a sink persisting checkpoint files per rank
// under dir, surviving process restarts. Writes are fsynced and atomically
// renamed; each file carries a format manifest with per-relation digests and
// a whole-file CRC, verified on every read. It retains DefaultCheckpointKeep
// generations per rank.
func NewFileCheckpointSink(dir string) CheckpointSink { return ra.FileCheckpointSink{Dir: dir} }

// NewFileCheckpointSinkKeep is NewFileCheckpointSink with an explicit
// per-rank generation retention count (keep < 1 means DefaultCheckpointKeep).
func NewFileCheckpointSinkKeep(dir string, keep int) CheckpointSink {
	return ra.FileCheckpointSink{Dir: dir, Keep: keep}
}

// CheckpointIntegrityStats reports process-wide checkpoint validation
// counters: how many stored generations failed verification and how many
// were quarantined (renamed aside / dropped) as a result.
func CheckpointIntegrityStats() (validationFailures, quarantined int64) {
	return ra.CheckpointIntegrityStats()
}
