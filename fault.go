package paralagg

import (
	"paralagg/internal/mpi"
	"paralagg/internal/ra"
)

// Fault tolerance surface: deterministic fault injection into the simulated
// runtime, structured rank-failure errors, and checkpoint sinks for
// crash/restart. See Config.Faults, Config.Watchdog, Config.CheckpointEvery
// and Config.Resume for how these plug into Exec.

// FaultPlan is a seeded, deterministic schedule of injected faults: rank
// crashes, stuck collectives, and dropped / delayed / corrupted messages.
// The same plan against the same program yields the same failure.
type FaultPlan = mpi.FaultPlan

// Fault specs for FaultPlan.
type (
	// Crash kills a rank when it enters a matching communication op.
	Crash = mpi.Crash
	// Hang makes a rank block forever in a matching op (watchdog fodder).
	Hang = mpi.Hang
	// Drop silently discards a fraction of point-to-point messages.
	Drop = mpi.Drop
	// Delay sleeps a fraction of point-to-point messages before delivery.
	Delay = mpi.Delay
	// Corrupt flips bits in one word of a matching send's payload.
	Corrupt = mpi.Corrupt
)

// AnyIter in a fault spec matches every iteration.
const AnyIter = mpi.AnyIter

// ErrRankFailed reports which rank failed, in which operation, at which
// fixpoint iteration. Every rank's error from a failed Exec wraps one.
type ErrRankFailed = mpi.ErrRankFailed

// Failure causes distinguishable with errors.Is.
var (
	// ErrInjectedCrash marks failures produced by a FaultPlan Crash spec.
	ErrInjectedCrash = mpi.ErrInjectedCrash
	// ErrWatchdogTimeout marks ranks the collective watchdog declared dead.
	ErrWatchdogTimeout = mpi.ErrWatchdogTimeout
	// ErrRecvTimeout marks a receive unmatched past the watchdog timeout
	// (dropped message or vanished sender).
	ErrRecvTimeout = mpi.ErrRecvTimeout
	// ErrPeerUnreachable marks a rank a networked transport's failure
	// detector declared dead after its heartbeats stopped.
	ErrPeerUnreachable = mpi.ErrPeerUnreachable
	// ErrCorruptMessage marks a message whose CRC32C verification failed:
	// the payload was altered between send and receive.
	ErrCorruptMessage = mpi.ErrCorruptMessage
)

// Transport is the wire a distributed execution runs over (Config.Transport):
// one process per rank, real sockets between them. internal/transport/tcp
// implements it with retry/backoff connection establishment, CRC32C-framed
// messages, reconnect-with-retransmission, and heartbeat failure detection.
type Transport = mpi.Transport

// NetStats carries a networked transport's robustness counters (dial
// retries, reconnects, retransmits, duplicate drops, heartbeat misses,
// CRC rejections).
type NetStats = mpi.NetStats

// AsRankFailure extracts the structured rank failure from an Exec error, if
// one is present (however deeply joined or wrapped).
func AsRankFailure(err error) (*ErrRankFailed, bool) { return mpi.AsRankFailure(err) }

// CheckpointSink stores one latest fixpoint snapshot per rank.
type CheckpointSink = ra.CheckpointSink

// Checkpoint is one rank's saved fixpoint position.
type Checkpoint = ra.Checkpoint

// ErrNoCheckpoint reports a Resume with an empty sink.
var ErrNoCheckpoint = ra.ErrNoCheckpoint

// NewMemoryCheckpointSink returns an in-process sink: it survives a crashed
// world (restart within the same process) but not a process restart.
func NewMemoryCheckpointSink() CheckpointSink { return ra.NewMemoryCheckpointSink() }

// NewFileCheckpointSink returns a sink persisting one checkpoint file per
// rank under dir, surviving process restarts.
func NewFileCheckpointSink(dir string) CheckpointSink { return ra.FileCheckpointSink{Dir: dir} }
