GO ?= go

.PHONY: build test race vet chaos chaos-net verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# chaos runs the crash/restart differential suite end to end.
chaos:
	$(GO) run ./cmd/paralagg -chaos

# chaos-net runs the network chaos suite over real loopback TCP gangs:
# repairable wire faults (slow links, resets, corrupted frames) must be
# bit-identical to in-process runs, partitions must fail structurally on
# every rank, and a killed endpoint must be recovered by the supervisor.
chaos-net:
	$(GO) run ./cmd/paralagg -chaos-net

# verify is the CI gate: static checks plus the full suite under the race
# detector (the SPMD runtime is all goroutines — races are correctness bugs
# here, not style).
verify: vet
	$(GO) test -race ./...
