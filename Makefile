GO ?= go

.PHONY: build test race vet chaos verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# chaos runs the crash/restart differential suite end to end.
chaos:
	$(GO) run ./cmd/paralagg -chaos

# verify is the CI gate: static checks plus the full suite under the race
# detector (the SPMD runtime is all goroutines — races are correctness bugs
# here, not style).
verify: vet
	$(GO) test -race ./...
