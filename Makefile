GO ?= go

.PHONY: build test race vet lint trace-smoke chaos chaos-net verify bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the static analyzers: go vet always, staticcheck when it is
# installed (CI installs it; locally `go install honnef.co/go/tools/cmd/staticcheck@latest`).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# trace-smoke runs a query with -trace and validates the Chrome-trace
# output: parses, one span track per rank, span names within the metered
# phase set. Covers both the in-process world and a TCP gang (per-rank
# trace files).
trace-smoke:
	$(GO) build -o /tmp/paralagg-trace ./cmd/paralagg
	/tmp/paralagg-trace -query sssp -graph wiki-sim -ranks 4 -subs 2 -quiet -trace /tmp/paralagg-smoke.json
	$(GO) run ./cmd/tracecheck -ranks 4 /tmp/paralagg-smoke.json
	/tmp/paralagg-trace -query sssp -graph wiki-sim -subs 2 -transport=tcp -spawn 3 -quiet -trace /tmp/paralagg-gang.json
	$(GO) run ./cmd/tracecheck -ranks 3 /tmp/paralagg-gang.rank0.json /tmp/paralagg-gang.rank1.json /tmp/paralagg-gang.rank2.json

# chaos runs the crash/restart differential suite end to end.
chaos:
	$(GO) run ./cmd/paralagg -chaos

# chaos-net runs the network chaos suite over real loopback TCP gangs:
# repairable wire faults (slow links, resets, corrupted frames) must be
# bit-identical to in-process runs, partitions must fail structurally on
# every rank, and a killed endpoint must be recovered by the supervisor.
chaos-net:
	$(GO) run ./cmd/paralagg -chaos-net

# verify is the CI gate: static checks plus the full suite under the race
# detector (the SPMD runtime is all goroutines — races are correctness bugs
# here, not style).
verify: vet
	$(GO) test -race ./...

# bench runs the hot-path benchmark suite (end-to-end SSSP/CC fixpoints at
# 1/4/8 ranks plus the accumulator microbenchmarks) with allocation
# accounting and records the trajectory in BENCH_hotpath.json.
bench:
	$(GO) test -run '^$$' -bench 'Hotpath|AccInsert|SetDedup' -benchmem -benchtime 50x ./... \
		| $(GO) run ./cmd/benchjson -out BENCH_hotpath.json

# bench-smoke is the CI variant: one iteration per benchmark, just to prove
# the suite still runs and reports.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Hotpath|AccInsert|SetDedup' -benchmem -benchtime 1x ./... \
		| $(GO) run ./cmd/benchjson
