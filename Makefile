GO ?= go

.PHONY: build test race vet lint trace-smoke chaos chaos-net chaos-integrity chaos-overload chaos-recovery chaos-tree chaos-serving verify bench bench-smoke bench-integrity bench-overload bench-recovery bench-collectives bench-serving bench-serving-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the static analyzers: go vet always, staticcheck when it is
# installed (CI installs it; locally `go install honnef.co/go/tools/cmd/staticcheck@latest`).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# trace-smoke runs a query with -trace and validates the Chrome-trace
# output: parses, one span track per rank, span names within the metered
# phase set. Covers both the in-process world and a TCP gang (per-rank
# trace files).
trace-smoke:
	$(GO) build -o /tmp/paralagg-trace ./cmd/paralagg
	/tmp/paralagg-trace -query sssp -graph wiki-sim -ranks 4 -subs 2 -quiet -trace /tmp/paralagg-smoke.json
	$(GO) run ./cmd/tracecheck -ranks 4 /tmp/paralagg-smoke.json
	/tmp/paralagg-trace -query sssp -graph wiki-sim -subs 2 -transport=tcp -spawn 3 -quiet -trace /tmp/paralagg-gang.json
	$(GO) run ./cmd/tracecheck -ranks 3 /tmp/paralagg-gang.rank0.json /tmp/paralagg-gang.rank1.json /tmp/paralagg-gang.rank2.json

# chaos runs the crash/restart differential suite end to end.
chaos:
	$(GO) run ./cmd/paralagg -chaos

# chaos-net runs the network chaos suite over real loopback TCP gangs:
# repairable wire faults (slow links, resets, corrupted frames) must be
# bit-identical to in-process runs, partitions must fail structurally on
# every rank, and a killed endpoint must be recovered by the supervisor.
chaos-net:
	$(GO) run ./cmd/paralagg -chaos-net

# chaos-integrity runs the state-integrity suite: silent in-memory bit
# flips must be detected within one iteration and healed by supervised
# rollback, rotten checkpoint generations must be quarantined with recovery
# falling back exactly one generation, and TCP gangs must agree on the
# divergence — every recovered answer bit-identical to the fault-free one.
chaos-integrity:
	$(GO) run ./cmd/paralagg -chaos-integrity

# chaos-overload runs the resource-exhaustion suite: slow consumers must be
# rate-matched by credit-based flow control inside a bounded outbox, phantom
# memory pressure against a budget must shed (soft) or fail structurally and
# recover under supervision (hard), and a full checkpoint device must
# degrade to an in-memory sink — every completed run bit-identical to the
# fault-free answer, nothing OOM-killed.
chaos-overload:
	$(GO) run ./cmd/paralagg -chaos-overload

# chaos-recovery runs the hot-replacement suite: a TCP gang loses a rank
# mid-exchange, survivors park in place with their in-memory state intact,
# and a replacement process rejoins at the next membership epoch, restores
# only its own shard, and splices into the retained send histories — the
# repaired answer bit-identical to the fault-free run at 4 and 8 ranks, and
# strictly cheaper than the whole-world restart control arm.
chaos-recovery:
	$(GO) run ./cmd/paralagg -chaos-recovery

# chaos-serving runs the serving differential suite: every scenario's
# insert/delete batches stream into a long-lived engine at 1, 2, and 4
# ranks, and after the initial load and every batch the resident relations
# must be bit-identical to a from-scratch recomputation over the same base
# facts. Incremental insert-only batches must also re-converge in strictly
# fewer iterations than the from-scratch control.
chaos-serving:
	$(GO) run ./cmd/paralagg -chaos-serving

# chaos-tree replays the crash/restart and hot-replacement suites with every
# collective routed through the binomial tree schedule: the same
# bit-identical differentials must hold when reductions take multi-hop
# routes, checkpoint cuts cross a tree barrier, and a replacement splices
# into tree-shaped retained send histories.
chaos-tree:
	$(GO) run ./cmd/paralagg -chaos -collective-schedule=tree
	$(GO) run ./cmd/paralagg -chaos-recovery -collective-schedule=tree

# verify is the CI gate: static checks plus the full suite under the race
# detector (the SPMD runtime is all goroutines — races are correctness bugs
# here, not style). The -race pass includes the integrity differentials in
# internal/chaos: divergence detection panics cross every rank's goroutine,
# so they are exactly where races would hide.
verify: vet
	$(GO) test -race ./...

# bench runs the hot-path benchmark suite (end-to-end SSSP/CC fixpoints at
# 1/4/8 ranks plus the accumulator microbenchmarks) with allocation
# accounting and records the trajectory in BENCH_hotpath.json.
bench:
	$(GO) test -run '^$$' -bench 'Hotpath|AccInsert|SetDedup' -benchmem -benchtime 50x ./... \
		| $(GO) run ./cmd/benchjson -out BENCH_hotpath.json

# bench-smoke is the CI variant: one iteration per benchmark, just to prove
# the suite still runs and reports.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Hotpath|AccInsert|SetDedup' -benchmem -benchtime 1x ./... \
		| $(GO) run ./cmd/benchjson

# bench-integrity measures the online divergence-detection overhead:
# identical SSSP fixpoints with fingerprinting off and on, recorded in
# BENCH_integrity.json. The on/off ns_per_op ratio is the integrity tax —
# budgeted <= 5% on the paper-scale pairs (Wiki16/Twitter32); the Grid
# micro pairs bound the adversarial constant factor.
bench-integrity:
	$(GO) test -run '^$$' -bench 'IntegrityO(n|ff)' -benchmem -benchtime 20x . \
		| $(GO) run ./cmd/benchjson -out BENCH_integrity.json

# bench-overload prices the overload machinery on the 4-rank SSSP TCP gang
# smoke at three budget levels (unlimited / ample / pinned-soft), recording
# ns/op plus the custom peak-B/op, stalls/op, and shed/op series in
# BENCH_overload.json (benchjson's `extra` map).
bench-overload:
	$(GO) test -run '^$$' -bench 'OverloadSSSPGang4' -benchmem -benchtime 10x . \
		| $(GO) run ./cmd/benchjson -out BENCH_overload.json

# bench-recovery times the repair-strategy differential on the 4- and
# 8-rank SSSP TCP gangs: the same mid-exchange crash repaired by a hot
# replacement (survivors parked, one rank respawned) versus the whole-world
# restart, recording mttr-ms/op — death to completed answer — in
# BENCH_recovery.json. The pattern is deliberately exact: a bare 'Recovery'
# would also match the slow simulated-recovery benchmarks.
bench-recovery:
	$(GO) test -run '^$$' -bench 'RecoveryHotReplace|RecoveryFullRestart' -benchmem -benchtime 10x . \
		| $(GO) run ./cmd/benchjson -out BENCH_recovery.json

# bench-serving measures sustained serving load against a long-lived
# engine: alternating insert/delete batches with interleaved point-lookup
# bursts at 2 and 4 ranks, plus the isolated read path. Records
# BENCH_serving.json with ns/op plus the custom qps, p99-ns, and
# reconv-iters/op series (benchjson's `extra` map).
bench-serving:
	$(GO) test -run '^$$' -bench 'Serving' -benchmem -benchtime 200x . \
		| $(GO) run ./cmd/benchjson -out BENCH_serving.json

# bench-serving-smoke is the CI variant: a handful of iterations, just to
# prove the serving benchmarks still run and parse into JSON.
bench-serving-smoke:
	$(GO) test -run '^$$' -bench 'Serving' -benchmem -benchtime 5x . \
		| $(GO) run ./cmd/benchjson

# bench-collectives compares the flat, tree, and ring schedules at 4/8/16
# ranks over the identical p2p substrate, recording BENCH_collectives.json:
# ns/allreduce and ns/exchange wall latency, root-bytes/op (traffic through
# the flat star's serialization point — 2(P-1) words flat vs 2·log2(P)
# under the tree), and modeled-ns/op (the EXPERIMENTS.md critical-path cost
# of the worst rank). Runs the root-bytes pin test first so the headline
# flat-112B/tree-48B numbers are asserted, not just recorded.
bench-collectives:
	$(GO) test -run 'ConvergenceAllreduceRootBytes' -count 1 .
	$(GO) test -run '^$$' -bench 'Collectives' -benchmem -benchtime 20x . \
		| $(GO) run ./cmd/benchjson -out BENCH_collectives.json
