package paralagg_test

// Recovery benchmarks: the MTTR differential BENCH_recovery.json tracks
// (`make bench-recovery`). Both arms run the same incident — the SSSP chaos
// scenario over a real loopback TCP gang, highest rank crashed entering
// iteration 5's tuple exchange — and repair it two ways:
//
//   - RecoveryHotReplace{4,8}:  survivors park in place, one replacement
//     process restores its own shard and splices into the retained send
//     histories (the partial-restart path);
//   - RecoveryFullRestart4:     every rank torn down and rebuilt, the whole
//     world re-entering from the agreed checkpoint (the baseline).
//
// Each run reports mttr-ms/op — wall clock from the victim's death to the
// gang completing — which is the number the two strategies compete on: the
// hot-replace arm must come in under the full-restart arm. Every run also
// re-verifies the bit-identical differential, so the benchmark doubles as a
// repeated correctness check.

import (
	"testing"

	"paralagg/internal/chaos"
)

func benchMTTR(b *testing.B, run func() (*chaos.RecoveryReport, error)) {
	b.ReportAllocs()
	var mttrMS float64
	for i := 0; i < b.N; i++ {
		rep, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Identical() {
			b.Fatalf("recovered gang diverged from the fault-free answer:\n got %v\nwant %v",
				rep.Recovered, rep.Clean)
		}
		mttrMS += float64(rep.MTTR.Microseconds()) / 1e3
	}
	b.ReportMetric(mttrMS/float64(b.N), "mttr-ms/op")
}

func BenchmarkRecoveryHotReplace4(b *testing.B) {
	sc := chaos.Scenarios()[0] // sssp
	benchMTTR(b, func() (*chaos.RecoveryReport, error) {
		return chaos.TCPHotReplace(sc, 4, 2, 5)
	})
}

func BenchmarkRecoveryHotReplace8(b *testing.B) {
	sc := chaos.Scenarios()[0]
	benchMTTR(b, func() (*chaos.RecoveryReport, error) {
		return chaos.TCPHotReplace(sc, 8, 2, 5)
	})
}

func BenchmarkRecoveryFullRestart4(b *testing.B) {
	sc := chaos.Scenarios()[0]
	benchMTTR(b, func() (*chaos.RecoveryReport, error) {
		return chaos.TCPFullRestart(sc, 4, 2, 5)
	})
}

func BenchmarkRecoveryFullRestart8(b *testing.B) {
	sc := chaos.Scenarios()[0]
	benchMTTR(b, func() (*chaos.RecoveryReport, error) {
		return chaos.TCPFullRestart(sc, 8, 2, 5)
	})
}
