package paralagg

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"paralagg/internal/btree"
	"paralagg/internal/core"
	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/obs"
	"paralagg/internal/ra"
	"paralagg/internal/resource"
	"paralagg/internal/tuple"
)

// Engine is the long-lived serving entry point: it holds a program's
// converged relations resident in the per-rank arenas, accepts streaming
// base-fact mutation batches through Apply, answers point lookups through
// Query without re-running any fixpoint, and snapshots or closes on demand.
// The one-shot Exec/Supervise paths are thin wrappers over
// Open + Apply(initial load) + Close, so batch and serving share one
// lifecycle.
//
// Internally the engine owns the SPMD world: every rank's goroutine parks
// in a command loop between batches, keeping its relation shards (wordmap
// arenas, B-tree indexes, Δ state) alive across Apply calls. Apply and
// Snapshot dispatch one collective command to every rank; Query reads the
// resident accumulators directly — no collectives, no iterations.
//
// Engine methods are safe for concurrent use: Apply/Snapshot/Close
// serialize, and Query runs concurrently with other Queries but is
// excluded while a mutation is in flight.
type Engine struct {
	cfg  Config
	prog *Program

	world *mpi.World
	mc    *metrics.Collector
	size  int

	// Rank-slot state, written once by each rank body before the command
	// loop starts (the readiness barrier in Open orders it before any use).
	// In-process worlds have one slot per rank; a distributed world hosts a
	// single rank, slot 0.
	insts []*core.Instance
	ranks []*Rank
	rcfgs []core.Config
	accts []*resource.Accountant
	cmds  []chan engineCmd

	// done receives the world's exit status exactly once.
	done      chan error
	closeOnce sync.Once

	// mu serializes Apply/Snapshot/Inspect/Close; qmu excludes Query during
	// mutations while letting queries run concurrently with each other; stmu
	// guards only the lifecycle flags and counters so Query and Stats can
	// read them without waiting for an in-flight mutation. stmu is never
	// held across a blocking call.
	mu   sync.Mutex
	qmu  sync.RWMutex
	stmu sync.Mutex

	// journal holds the global base-fact set per relation, maintained by
	// the Rank load hook and by Apply's insert/delete bookkeeping. The
	// deletion path re-derives from it; the from-scratch fallback replays
	// it entirely.
	jmu     sync.Mutex
	journal map[string]*journalRel

	loaded bool
	closed bool
	broken bool
	runErr error

	applies    int64
	iterations int64
	queries    atomic.Int64
}

type journalRel struct {
	arity int
	facts *btree.Tree
}

// engineCmd is one collective command: every rank body runs fn and reports
// its error on done.
type engineCmd struct {
	fn   func(slot int, rk *Rank) error
	done chan error
}

// Mutation is one batch of base-fact changes.
type Mutation struct {
	// Insert maps relation name → base facts to add (canonical column
	// order). Inserting a fact already present is a no-op.
	Insert map[string][]Tuple
	// Delete maps relation name → base facts to remove. Deleting a fact
	// that is not a base fact is a no-op (derived tuples cannot be deleted —
	// they re-derive from their supports).
	Delete map[string][]Tuple
	// Load, only valid on the first Apply, runs on every rank to feed the
	// initial base facts (the same contract as Exec's load callback). Facts
	// loaded through it are journaled for later delete re-derivation.
	Load func(*Rank) error
}

// ApplyStats reports what one mutation batch cost.
type ApplyStats struct {
	// StratumIters lists each stratum's re-convergence iteration count.
	StratumIters []int
	// Iterations sums them.
	Iterations int
	// InvalidationRounds counts the over-approximate invalidation rounds a
	// deletion batch ran (0 for insert-only batches).
	InvalidationRounds int
	// Dropped is the global number of tuples invalidated by deletions.
	Dropped uint64
	// Incremental reports whether the batch was maintained incrementally
	// from the existing Δ (false on the initial load and on the
	// from-scratch fallback for non-incrementalizable programs).
	Incremental bool
	// MemPeakBytes is the maximum accounted memory any rank reached during
	// the batch (0 when Config.MemBudget is unset).
	MemPeakBytes int64
}

// EngineStats are cumulative counters over the engine's lifetime.
type EngineStats struct {
	// Applies is the number of completed Apply batches (including the
	// initial load).
	Applies int64
	// Queries is the number of completed point queries.
	Queries int64
	// Iterations is the total fixpoint iterations across every Apply —
	// queries never add to it (the O(lookup) guarantee is testable).
	Iterations int64
}

// Open builds the world, instantiates the program on every rank, and parks
// the ranks awaiting mutation batches. The first Apply performs the initial
// load and full fixpoint; Close tears the world down.
func Open(cfg Config, prog *Program) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	size := cfg.ranks()
	var world *mpi.World
	if cfg.Transport != nil {
		size = cfg.Transport.Size()
		world = mpi.NewDistributedWorld(cfg.Transport)
	} else {
		world = mpi.NewWorld(size)
	}
	if cfg.Faults != nil {
		world.SetFaultPlan(cfg.Faults)
	}
	// Validated above; the parse cannot fail here.
	sched, _ := mpi.ParseScheduleKind(cfg.CollectiveSchedule)
	world.SetSchedule(sched)
	if cfg.Topology != nil {
		world.SetTopology(cfg.Topology)
	}
	if cfg.AdaptiveWatchdog {
		ceil := cfg.WatchdogCeil
		if ceil == 0 {
			if cfg.Watchdog > 0 {
				ceil = cfg.Watchdog
			} else {
				ceil = 10 * time.Second
			}
		}
		world.SetAdaptiveWatchdog(mpi.AdaptiveWatchdog{Floor: cfg.WatchdogFloor, Ceil: ceil})
	} else if cfg.Watchdog > 0 {
		world.SetWatchdog(cfg.Watchdog)
	}
	if cfg.Observer != nil {
		world.SetObserver(cfg.Observer)
		e := obs.Get()
		e.Kind, e.Rank, e.Ranks = obs.KindRunStart, -1, size
		e.End = time.Now().UnixNano()
		obs.Emit(cfg.Observer, e)
	}
	mc := metrics.NewCollector(size)
	mc.SetObserver(cfg.Observer)

	runCfg := core.Config{
		Subs: cfg.Subs, SubsFor: cfg.SubsFor, Plan: cfg.Plan.mode(),
		MaxIters: cfg.MaxIters, Adaptive: cfg.Adaptive,
		CheckpointEvery: cfg.CheckpointEvery, Checkpoints: cfg.Checkpoints,
		Integrity: cfg.Integrity,
	}

	slots := size
	if world.Distributed() {
		slots = 1
	}
	e := &Engine{
		cfg: cfg, prog: prog, world: world, mc: mc, size: size,
		insts: make([]*core.Instance, slots),
		ranks: make([]*Rank, slots),
		rcfgs: make([]core.Config, slots),
		accts: make([]*resource.Accountant, slots),
		cmds:  make([]chan engineCmd, slots),
		done:  make(chan error, 1),

		journal: map[string]*journalRel{},
	}
	for i := range e.cmds {
		e.cmds[i] = make(chan engineCmd)
	}

	body := func(c *mpi.Comm) error {
		rcfg := runCfg
		var acct *resource.Accountant
		if cfg.MemBudget > 0 {
			// One accountant per rank: the fixpoint samples compute state
			// into it, and a flow-controlled transport charges its outbox.
			acct = resource.NewAccountant(cfg.MemBudget)
			rcfg.Acct = acct
			if sa, ok := cfg.Transport.(interface {
				SetAccountant(*resource.Accountant)
			}); ok {
				sa.SetAccountant(acct)
			}
		}
		inst, err := prog.Instantiate(c, mc, rcfg)
		if err != nil {
			return err
		}
		slot := 0
		if !world.Distributed() {
			slot = c.Rank()
		}
		e.insts[slot] = inst
		e.ranks[slot] = &Rank{comm: c, inst: inst, record: e.recordFact}
		e.rcfgs[slot] = rcfg
		e.accts[slot] = acct
		for cmd := range e.cmds[slot] {
			cerr := cmd.fn(slot, e.ranks[slot])
			cmd.done <- cerr
			if cerr != nil {
				// SPMD state can no longer be trusted after a failed
				// collective command; the engine tears down.
				return cerr
			}
		}
		return nil
	}
	go func() {
		if world.Distributed() {
			e.done <- world.RunLocal(body)
		} else {
			e.done <- world.Run(body)
		}
	}()

	// Readiness barrier: every rank must have instantiated and entered its
	// command loop. Instantiation errors surface here.
	if err := e.dispatch(func(int, *Rank) error { return nil }); err != nil {
		e.teardown()
		e.emitRunEnd(err)
		return nil, err
	}
	return e, nil
}

// dispatch sends one collective command to every rank and waits for all
// replies, watching for the world dying underneath (rank panic, transport
// failure). Callers hold e.mu.
func (e *Engine) dispatch(fn func(slot int, rk *Rank) error) error {
	if _, _, broken, runErr := e.state(); broken {
		return runErr
	}
	n := len(e.cmds)
	done := make(chan error, n)
	cmd := engineCmd{fn: fn, done: done}
	for i := 0; i < n; i++ {
		select {
		case e.cmds[i] <- cmd:
		case err := <-e.done:
			return e.fail(err)
		}
	}
	var first error
	for i := 0; i < n; i++ {
		select {
		case err := <-done:
			if err != nil && first == nil {
				first = err
			}
		case err := <-e.done:
			return e.fail(err)
		}
	}
	if first != nil {
		// The failing rank's body already exited; tear the rest down and
		// return the world's exit status (it carries the rank-failure
		// wrapping Supervise relies on), falling back to the raw error.
		if werr := e.teardown(); werr != nil {
			return werr
		}
		return first
	}
	return nil
}

// state snapshots the lifecycle flags under stmu.
func (e *Engine) state() (loaded, closed, broken bool, runErr error) {
	e.stmu.Lock()
	defer e.stmu.Unlock()
	return e.loaded, e.closed, e.broken, e.runErr
}

// fail records the world's exit error and marks the engine broken.
func (e *Engine) fail(err error) error {
	if err == nil {
		err = fmt.Errorf("paralagg: engine world exited")
	}
	e.stmu.Lock()
	defer e.stmu.Unlock()
	e.broken = true
	if e.runErr == nil {
		e.runErr = err
	}
	return e.runErr
}

// teardown closes the command channels (ending every parked rank body) and
// collects the world's exit status. Callers hold e.mu (or, in Open, have
// sole ownership of the engine).
func (e *Engine) teardown() error {
	e.closeOnce.Do(func() {
		for _, ch := range e.cmds {
			close(ch)
		}
	})
	_, _, broken, runErr := e.state()
	if !broken {
		// Drain outside stmu: the world exit can take as long as its
		// slowest rank body.
		runErr = <-e.done
		e.stmu.Lock()
		e.broken = true
		e.runErr = runErr
		e.stmu.Unlock()
	}
	return runErr
}

// emitRunEnd streams the run-end observer event (once, at engine teardown).
func (e *Engine) emitRunEnd(err error) {
	if e.cfg.Observer == nil {
		return
	}
	ev := obs.Get()
	ev.Kind, ev.Rank = obs.KindRunEnd, -1
	if err != nil {
		ev.Err = err.Error()
	}
	ev.End = time.Now().UnixNano()
	obs.Emit(e.cfg.Observer, ev)
}

// Close shuts the engine down: parked ranks unwind, the world exits, and
// the world's exit status is returned. Idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, closed, _, runErr := e.state()
	if closed {
		return runErr
	}
	e.stmu.Lock()
	e.closed = true
	e.stmu.Unlock()
	err := e.teardown()
	e.emitRunEnd(err)
	return err
}

// Apply applies one mutation batch and re-runs the fixpoint to
// re-convergence. The first Apply performs the initial load (Mutation.Load
// or Insert) and the full from-zero fixpoint; subsequent batches are
// maintained incrementally when the program allows it (see
// ApplyStats.Incremental): inserts continue the fixpoint from a freshly
// seeded Δ, deletions run over-approximate invalidation and re-derive from
// the surviving supports. It is serialized with other mutations and
// excludes queries while in flight.
func (e *Engine) Apply(ctx context.Context, m Mutation) (ApplyStats, error) {
	stats, _, err := e.apply(ctx, m, nil)
	return stats, err
}

// apply is the shared mutation path: Exec routes its load/inspect callbacks
// through it, Apply passes nil inspect. It returns the per-batch stats and
// a Result carrying the post-batch relation counts.
func (e *Engine) apply(ctx context.Context, m Mutation, inspect func(*Rank) error) (ApplyStats, *Result, error) {
	var stats ApplyStats
	e.mu.Lock()
	defer e.mu.Unlock()
	loaded, closed, broken, runErr := e.state()
	if closed {
		return stats, nil, fmt.Errorf("paralagg: Apply on a closed engine")
	}
	if broken {
		return stats, nil, runErr
	}
	if ctx != nil {
		select {
		case <-ctx.Done():
			return stats, nil, ctx.Err()
		default:
		}
	}
	first := !loaded
	if m.Load != nil && !first {
		return stats, nil, fmt.Errorf("paralagg: Mutation.Load is only valid on the initial Apply")
	}
	if !first && e.world.Distributed() && (len(m.Insert) > 0 || len(m.Delete) > 0) {
		return stats, nil, fmt.Errorf("paralagg: incremental mutations are not supported on a distributed world in this release (each process holds only its own journal shard)")
	}
	if err := e.validateMutation(m); err != nil {
		return stats, nil, err
	}
	// The journal reflects the post-batch base-fact set before the ranks
	// re-derive from it.
	e.journalMutation(m)

	res := &Result{Ranks: e.size, Counts: map[string]uint64{}}
	var applyStats core.ApplyStats
	record := func(rk *Rank) bool { return rk.ID() == 0 || e.world.Distributed() }
	fn := func(slot int, rk *Rank) error {
		inst := e.insts[slot]
		rcfg := e.rcfgs[slot]
		// A hot replacement must not reload base facts: the restored
		// checkpoint carries every relation wholesale (see Exec's original
		// contract).
		if m.Load != nil && !e.cfg.Rejoin {
			if err := m.Load(rk); err != nil {
				return err
			}
		}
		if first {
			var rstats core.RunStats
			var err error
			switch {
			case e.cfg.Rejoin:
				cp, ok, perr := ra.PeekRejoin(e.cfg.Checkpoints, rk.ID())
				if perr != nil {
					return perr
				}
				if !ok {
					return ra.ErrNoCheckpoint
				}
				rstats, err = inst.Rejoin(rcfg, cp)
			case e.cfg.Resume:
				rstats, err = inst.Resume(rcfg)
			default:
				rstats = inst.Run(rcfg)
			}
			if err != nil {
				return err
			}
			if first && len(m.Insert) > 0 {
				// Initial batch may also carry explicit inserts (serving
				// without a Load callback): seed and converge them too.
				ins, serr := e.stripeMut(m.Insert, rk)
				if serr != nil {
					return serr
				}
				ast, aerr := inst.ApplyDelta(rcfg, core.ApplyInput{Inserts: ins, Reload: e.reloadFor(rk)})
				if aerr != nil {
					return aerr
				}
				rstats.TotalIters += ast.TotalIters
				rstats.StratumIters = append(rstats.StratumIters, ast.StratumIters...)
			}
			if record(rk) {
				applyStats = core.ApplyStats{RunStats: rstats}
			}
		} else {
			ins, err := e.stripeMut(m.Insert, rk)
			if err != nil {
				return err
			}
			del, err := e.stripeMut(m.Delete, rk)
			if err != nil {
				return err
			}
			ast, err := inst.ApplyDelta(rcfg, core.ApplyInput{
				Inserts: ins, Deletes: del, Reload: e.reloadFor(rk),
			})
			if err != nil {
				return err
			}
			if record(rk) {
				applyStats = ast
			}
		}
		if e.cfg.MemBudget > 0 {
			// Collective: every rank agrees on the peak, so the schedule
			// stays uniform.
			peak := int64(rk.Reduce(uint64(e.accts[slot].PeakBytes()), OpMax))
			if record(rk) {
				res.MemPeakBytes = peak
			}
		}
		// Gather final sizes (collective; identical on all ranks).
		names := e.prog.RelationNames()
		sort.Strings(names)
		for _, n := range names {
			count := inst.Relation(n).GlobalFullCount()
			if record(rk) {
				res.Counts[n] = count
			}
		}
		if inspect != nil {
			return inspect(rk)
		}
		return nil
	}
	e.qmu.Lock()
	err := e.dispatch(fn)
	e.qmu.Unlock()
	if err != nil {
		return stats, nil, err
	}
	e.stmu.Lock()
	e.loaded = true
	e.applies++
	e.iterations += int64(applyStats.TotalIters)
	e.stmu.Unlock()
	stats = ApplyStats{
		StratumIters:       applyStats.StratumIters,
		Iterations:         applyStats.TotalIters,
		InvalidationRounds: applyStats.InvalidationRounds,
		Dropped:            applyStats.Dropped,
		Incremental:        applyStats.Incremental,
		MemPeakBytes:       res.MemPeakBytes,
	}
	res.StratumIters = applyStats.StratumIters
	res.Iterations = applyStats.TotalIters
	return stats, res, nil
}

// validateMutation checks relation names and tuple arities against the
// program before any collective work starts.
func (e *Engine) validateMutation(m Mutation) error {
	for _, batch := range []map[string][]Tuple{m.Insert, m.Delete} {
		for name, facts := range batch {
			d := e.prog.Decl(name)
			if d == nil {
				return fmt.Errorf("paralagg: mutation targets undeclared relation %q", name)
			}
			for _, f := range facts {
				if len(f) != d.Arity {
					return fmt.Errorf("paralagg: relation %q has arity %d, mutation tuple has %d columns", name, d.Arity, len(f))
				}
			}
		}
	}
	return nil
}

// journalMutation folds one batch into the base-fact journal.
func (e *Engine) journalMutation(m Mutation) {
	e.jmu.Lock()
	defer e.jmu.Unlock()
	for name, facts := range m.Insert {
		jr := e.journalRelLocked(name, e.prog.Decl(name).Arity)
		for _, f := range facts {
			jr.facts.Insert(tuple.Tuple(f))
		}
	}
	for name, facts := range m.Delete {
		jr := e.journal[name]
		if jr == nil {
			continue
		}
		for _, f := range facts {
			jr.facts.Delete(tuple.Tuple(f))
		}
	}
}

// recordFact is the Rank load hook: every base fact loaded through
// Rank.Load/LoadShare lands in the journal (t == nil just registers the
// relation, so the reload set stays uniform even for ranks with an empty
// share).
func (e *Engine) recordFact(rel string, arity int, t tuple.Tuple) {
	e.jmu.Lock()
	defer e.jmu.Unlock()
	jr := e.journalRelLocked(rel, arity)
	if t != nil {
		jr.facts.Insert(t)
	}
}

func (e *Engine) journalRelLocked(rel string, arity int) *journalRel {
	jr := e.journal[rel]
	if jr == nil {
		jr = &journalRel{arity: arity, facts: btree.New()}
		e.journal[rel] = jr
	}
	return jr
}

// stripeMut deterministically splits a global mutation map into this rank's
// share: fact i of a relation's batch belongs to rank i mod size. Every
// relation key survives (possibly with an empty buffer) so the mutated-
// relation set is uniform across ranks.
func (e *Engine) stripeMut(src map[string][]Tuple, rk *Rank) (map[string]*tuple.Buffer, error) {
	if len(src) == 0 {
		return nil, nil
	}
	out := make(map[string]*tuple.Buffer, len(src))
	id, size := rk.ID(), rk.Size()
	for name, facts := range src {
		rl, err := rk.relation(name)
		if err != nil {
			return nil, err
		}
		buf := tuple.NewBuffer(rl.Arity, len(facts)/size+1)
		for i, f := range facts {
			if i%size == id {
				buf.Append(tuple.Tuple(f))
			}
		}
		out[name] = buf
	}
	return out, nil
}

// reloadFor returns the per-rank journal reader: rank r gets base fact i of
// a relation's journal when i mod size == r (the same deterministic stripe
// LoadShare uses). nil when the relation never received base facts.
func (e *Engine) reloadFor(rk *Rank) func(string) *tuple.Buffer {
	id, size := rk.ID(), rk.Size()
	return func(name string) *tuple.Buffer {
		e.jmu.Lock()
		jr := e.journal[name]
		e.jmu.Unlock()
		if jr == nil {
			return nil
		}
		buf := tuple.NewBuffer(jr.arity, jr.facts.Len()/size+1)
		i := 0
		jr.facts.Ascend(func(t tuple.Tuple) bool {
			if i%size == id {
				buf.Append(t)
			}
			i++
			return true
		})
		return buf
	}
}

// Inspect runs fn on every rank (the Exec inspect contract: fn must perform
// identical collective sequences on every rank). The differential suites
// use it to fingerprint the resident state between batches.
func (e *Engine) Inspect(fn func(*Rank) error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, closed, broken, runErr := e.state()
	if closed {
		return fmt.Errorf("paralagg: Inspect on a closed engine")
	}
	if broken {
		return runErr
	}
	return e.dispatch(func(_ int, rk *Rank) error { return fn(rk) })
}

// Snapshot captures every relation of the program into sink, one
// checkpoint per rank, labeled with the engine's cumulative iteration
// count. A later Open with Config.Resume and the same sink restores the
// converged state without replaying any batch. Collective; serialized with
// Apply.
func (e *Engine) Snapshot(sink CheckpointSink) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, closed, broken, runErr := e.state()
	if closed {
		return fmt.Errorf("paralagg: Snapshot on a closed engine")
	}
	if broken {
		return runErr
	}
	if sink == nil {
		return fmt.Errorf("paralagg: Snapshot needs a sink")
	}
	e.stmu.Lock()
	iter := int(e.iterations)
	e.stmu.Unlock()
	return e.dispatch(func(slot int, rk *Rank) error {
		inst := e.insts[slot]
		sendMarks, recvMarks, marked := rk.comm.CheckpointMarks()
		var words []mpi.Word
		var sums []uint64
		for _, rel := range inst.SnapshotRelations() {
			sub := rel.SnapshotWords()
			sums = append(sums, ra.SectionSum(sub))
			words = append(words, mpi.Word(len(sub)))
			words = append(words, sub...)
		}
		cp := ra.Checkpoint{
			Ranks: rk.Size(), Stratum: inst.Strata() - 1, Iter: iter,
			Words: words, SectionSums: sums,
			SendSeqs: sendMarks, RecvSeqs: recvMarks,
		}
		err := sink.Save(rk.ID(), cp)
		if marked {
			rk.comm.CheckpointBarrier()
			rk.comm.WireMarkCheckpoint()
		}
		return err
	})
}

// Stats returns the engine's cumulative counters. It never blocks behind an
// in-flight Apply.
func (e *Engine) Stats() EngineStats {
	e.stmu.Lock()
	defer e.stmu.Unlock()
	return EngineStats{
		Applies:    e.applies,
		Queries:    e.queries.Load(),
		Iterations: e.iterations,
	}
}

// finishReport fills the simulated-time and communication fields of a
// Result after the world has exited (the Exec wrapper's tail).
func (e *Engine) finishReport(res *Result) {
	report := e.mc.BuildReport(e.cfg.cost())
	res.SimSeconds = report.SimSeconds()
	res.PhaseSeconds = map[string]float64{}
	for p := 0; p < len(metrics.PhaseNames); p++ {
		res.PhaseSeconds[metrics.PhaseNames[p]] = report.PhaseSeconds(metrics.Phase(p))
	}
	res.IterPhaseSeconds = make([]map[string]float64, len(report.IterCriticalNS))
	for i, row := range report.IterCriticalNS {
		m := map[string]float64{}
		for p, ns := range row {
			m[metrics.PhaseNames[p]] = ns / 1e9
		}
		res.IterPhaseSeconds[i] = m
	}
	tot := e.world.Stats().Snapshot()
	res.CommBytes = int64(tot.Bytes())
	res.CommMsgs = int64(tot.P2PMessages + tot.CollectiveCalls)
}
