package paralagg

import (
	"fmt"
	"sync"
	"testing"
)

// TestExecConnectedComponents drives the full public API: declare, load,
// run, inspect.
func TestExecConnectedComponents(t *testing.T) {
	// Two components: {0,1,2} and {3,4}.
	edges := [][2]uint64{{0, 1}, {1, 2}, {3, 4}}

	p := NewProgram()
	if err := p.DeclareSet("edge", 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.DeclareAgg("cc", 1, MinAgg); err != nil {
		t.Fatal(err)
	}
	p.Add(
		R(A("cc", Var("y"), Var("z")),
			A("cc", Var("x"), Var("z")),
			A("edge", Var("x"), Var("y"))),
	)

	// Every rank's inspect goroutine records its shard here concurrently.
	var labelsMu sync.Mutex
	labels := map[uint64]uint64{}
	res, err := Exec(p, Config{Ranks: 4},
		func(rk *Rank) error {
			// Undirected edges.
			if err := rk.LoadShare("edge", len(edges), func(i int, emit func(Tuple)) {
				emit(Tuple{edges[i][0], edges[i][1]})
				emit(Tuple{edges[i][1], edges[i][0]})
			}); err != nil {
				return err
			}
			// Seed cc(n, n) for nodes 0..4.
			var seeds []Tuple
			for n := uint64(rk.ID()); n < 5; n += uint64(rk.Size()) {
				seeds = append(seeds, Tuple{n, n})
			}
			return rk.Load("cc", seeds)
		},
		func(rk *Rank) error {
			// Verify labels: min node id of each component.
			want := map[uint64]uint64{0: 0, 1: 0, 2: 0, 3: 3, 4: 3}
			var wrong uint64
			if err := rk.Each("cc", func(tt Tuple) {
				if want[tt[0]] != tt[1] {
					wrong++
				}
			}); err != nil {
				return err
			}
			if g := rk.Reduce(wrong, OpSum); g != 0 {
				return fmt.Errorf("%d wrong labels", g)
			}
			labelsMu.Lock()
			err := rk.Each("cc", func(tt Tuple) { labels[tt[0]] = tt[1] })
			labelsMu.Unlock()
			if err != nil {
				return err
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["cc"] != 5 {
		t.Fatalf("cc count = %d", res.Counts["cc"])
	}
	if res.Counts["edge"] != 6 {
		t.Fatalf("edge count = %d", res.Counts["edge"])
	}
	if res.Iterations < 2 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	if res.SimSeconds <= 0 {
		t.Fatalf("sim time = %v", res.SimSeconds)
	}
	if res.CommBytes <= 0 || res.CommMsgs <= 0 {
		t.Fatalf("comm accounting empty: %d bytes %d msgs", res.CommBytes, res.CommMsgs)
	}
	if len(res.IterPhaseSeconds) != res.Iterations {
		t.Fatalf("iteration breakdown has %d rows for %d iterations",
			len(res.IterPhaseSeconds), res.Iterations)
	}
	if res.Summary() == "" {
		t.Fatal("empty summary")
	}
}

// TestExecPlanPolicies checks every plan policy produces identical results.
func TestExecPlanPolicies(t *testing.T) {
	p := NewProgram()
	p.DeclareSet("edge", 2, 1)
	p.DeclareSet("path", 2, 1)
	p.Add(
		R(A("path", Var("x"), Var("y")), A("edge", Var("x"), Var("y"))),
		R(A("path", Var("x"), Var("z")), A("path", Var("x"), Var("y")), A("edge", Var("y"), Var("z"))),
	)
	load := func(rk *Rank) error {
		return rk.LoadShare("edge", 30, func(i int, emit func(Tuple)) {
			emit(Tuple{uint64(i % 10), uint64((i*i + 1) % 10)})
		})
	}
	var counts []uint64
	for _, plan := range []PlanPolicy{Dynamic, StaticLeft, StaticRight, AntiDynamic} {
		res, err := Exec(p, Config{Ranks: 3, Plan: plan}, load, nil)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, res.Counts["path"])
	}
	for _, c := range counts[1:] {
		if c != counts[0] {
			t.Fatalf("plan policies disagree: %v", counts)
		}
	}
}

// TestExecSubBucketsAgree checks sub-bucketing does not change results.
func TestExecSubBucketsAgree(t *testing.T) {
	p := NewProgram()
	p.DeclareSet("edge", 2, 1)
	p.DeclareAgg("cc", 1, MinAgg)
	p.Add(R(A("cc", Var("y"), Var("z")), A("cc", Var("x"), Var("z")), A("edge", Var("x"), Var("y"))))
	load := func(rk *Rank) error {
		// Star graph: node 0 connects to everything (maximum skew).
		if err := rk.LoadShare("edge", 40, func(i int, emit func(Tuple)) {
			emit(Tuple{0, uint64(i + 1)})
			emit(Tuple{uint64(i + 1), 0})
		}); err != nil {
			return err
		}
		var seeds []Tuple
		for n := uint64(rk.ID()); n < 41; n += uint64(rk.Size()) {
			seeds = append(seeds, Tuple{n, n})
		}
		return rk.Load("cc", seeds)
	}
	var counts []uint64
	for _, subs := range []int{1, 8} {
		res, err := Exec(p, Config{Ranks: 4, Subs: subs}, load, func(rk *Rank) error {
			var bad uint64
			if err := rk.Each("cc", func(tt Tuple) {
				if tt[1] != 0 {
					bad++
				}
			}); err != nil {
				return err
			}
			if g := rk.Reduce(bad, OpSum); g != 0 {
				return fmt.Errorf("subs=%d: %d nodes mislabeled", subs, g)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, res.Counts["cc"])
	}
	if counts[0] != counts[1] || counts[0] != 41 {
		t.Fatalf("counts = %v, want [41 41]", counts)
	}
}

func TestExecErrors(t *testing.T) {
	p := NewProgram()
	p.DeclareSet("edge", 2, 1)
	p.Add(R(A("edge", Var("x"), Var("q")), A("edge", Var("x"), Var("y"))))
	// Head variable q unbound: Instantiate must fail on every rank.
	if _, err := Exec(p, Config{Ranks: 2}, nil, nil); err == nil {
		t.Fatal("expected instantiate error")
	}

	p2 := NewProgram()
	p2.DeclareSet("edge", 2, 1)
	if _, err := Exec(p2, Config{Ranks: 2}, func(rk *Rank) error {
		return rk.Load("nope", nil)
	}, nil); err == nil {
		t.Fatal("expected load error")
	}
}

func TestConfigDefaults(t *testing.T) {
	if (Config{}).ranks() != 4 {
		t.Error("default ranks")
	}
	if (Config{Ranks: 7}).ranks() != 7 {
		t.Error("explicit ranks")
	}
	if (Config{}).cost().WorkUnitNS == 0 {
		t.Error("default cost model empty")
	}
}

// TestExecAdaptiveBalancing verifies the Fig. 1 balancing phase through the
// public API: results stay exact on a skewed graph and the rebalance phase
// shows up in the report.
func TestExecAdaptiveBalancing(t *testing.T) {
	p := NewProgram()
	p.DeclareSet("edge", 2, 1)
	p.DeclareAgg("cc", 1, MinAgg)
	p.Add(R(A("cc", Var("y"), Var("z")), A("cc", Var("x"), Var("z")), A("edge", Var("x"), Var("y"))))
	load := func(rk *Rank) error {
		// Star: maximum skew on edge's key column.
		if err := rk.LoadShare("edge", 60, func(i int, emit func(Tuple)) {
			emit(Tuple{0, uint64(i + 1)})
			emit(Tuple{uint64(i + 1), 0})
		}); err != nil {
			return err
		}
		var seeds []Tuple
		for n := uint64(rk.ID()); n < 61; n += uint64(rk.Size()) {
			seeds = append(seeds, Tuple{n, n})
		}
		return rk.Load("cc", seeds)
	}
	res, err := Exec(p, Config{Ranks: 6, Subs: 1, Adaptive: true}, load, func(rk *Rank) error {
		var bad uint64
		if err := rk.Each("cc", func(tt Tuple) {
			if tt[1] != 0 {
				bad++
			}
		}); err != nil {
			return err
		}
		if g := rk.Reduce(bad, OpSum); g != 0 {
			return fmt.Errorf("%d mislabeled nodes under adaptive balancing", g)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["cc"] != 61 {
		t.Fatalf("cc = %d", res.Counts["cc"])
	}
	if res.PhaseSeconds["rebalance"] <= 0 {
		t.Fatalf("rebalance phase not recorded: %v", res.PhaseSeconds)
	}
}

// TestParseProgramThroughExec runs a parsed text program through the full
// public pipeline.
func TestParseProgramThroughExec(t *testing.T) {
	p, err := ParseProgram(`
.set edge 2 key=1
.set reach 2 key=1
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan == "" {
		t.Fatal("empty plan")
	}
	res, err := Exec(p, Config{Ranks: 3}, func(rk *Rank) error {
		return rk.LoadShare("edge", 4, func(i int, emit func(Tuple)) {
			emit(Tuple{uint64(i), uint64(i + 1)})
		})
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["reach"] != 10 { // closure of a 5-node chain
		t.Fatalf("reach = %d, want 10", res.Counts["reach"])
	}
}

func TestParseProgramError(t *testing.T) {
	if _, err := ParseProgram(".bogus"); err == nil {
		t.Fatal("accepted bad program")
	}
}
