package paralagg_test

// End-to-end hot-path benchmarks: SSSP and CC fixpoints on a deterministic
// grid at 1/4/8 ranks, with -benchmem allocation accounting. These are the
// workloads BENCH_hotpath.json tracks (`make bench`); the interesting
// series is allocs/op — the Go allocator is the single-node bottleneck the
// wordmap/arena storage layer exists to remove (cf. the shared-nothing join
// study's finding that buffer management, not the network, caps single-node
// scaling).

import (
	"testing"

	"paralagg"
	"paralagg/internal/graph"
	"paralagg/internal/queries"
)

// hotpathGraph is sized so a fixpoint runs ~20 iterations in a few
// milliseconds: big enough to reach steady state, small enough for
// -benchtime=1x CI smoke runs.
func hotpathGraph() *graph.Graph {
	return graph.Grid("hotpath-grid", 24, 24, 8, 11)
}

func benchHotpath(b *testing.B, query string, ranks int) {
	g := hotpathGraph()
	sources := []uint64{0, 5}
	cfg := paralagg.Config{Ranks: ranks, Subs: 2, Plan: paralagg.Dynamic}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if query == "sssp" {
			_, err = queries.RunSSSP(g, sources, cfg)
		} else {
			_, err = queries.RunCC(g, cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotpathSSSPRanks1(b *testing.B) { benchHotpath(b, "sssp", 1) }
func BenchmarkHotpathSSSPRanks4(b *testing.B) { benchHotpath(b, "sssp", 4) }
func BenchmarkHotpathSSSPRanks8(b *testing.B) { benchHotpath(b, "sssp", 8) }
func BenchmarkHotpathCCRanks1(b *testing.B)   { benchHotpath(b, "cc", 1) }
func BenchmarkHotpathCCRanks4(b *testing.B)   { benchHotpath(b, "cc", 4) }
func BenchmarkHotpathCCRanks8(b *testing.B)   { benchHotpath(b, "cc", 8) }
