module paralagg

go 1.24
