// SSSP: the paper's flagship recursive-aggregation query (§II-C) on a
// synthetic social graph, with the full phase breakdown the evaluation
// section reports.
//
//	go run ./examples/sssp [-graph twitter-sim] [-ranks 32] [-sources 5] [-subs 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"paralagg"
	"paralagg/internal/graph"
)

func main() {
	gname := flag.String("graph", "twitter-sim", "catalog graph name")
	ranks := flag.Int("ranks", 32, "simulated MPI ranks")
	nsources := flag.Int("sources", 5, "simultaneous SSSP sources")
	subs := flag.Int("subs", 8, "sub-buckets per bucket (spatial load balancing)")
	flag.Parse()

	g, err := graph.Load(*gname)
	if err != nil {
		log.Fatal(err)
	}
	sources := g.Sources(*nsources, 1)
	fmt.Printf("graph: %v\nsources: %v\n\n", g, sources)

	// The program from §II-C:
	//   Spath(n, n, 0)           ← Start(n).           (loaded as facts)
	//   Spath(f, t, $MIN(l + w)) ← Spath(f, m, l), Edge(m, t, w).
	p := paralagg.NewProgram()
	if err := p.DeclareSet("edge", 3, 1); err != nil {
		log.Fatal(err)
	}
	// spath has two independent columns (from, to) and one $MIN-aggregated
	// dependent column (the distance).
	if err := p.DeclareAgg("spath", 2, paralagg.MinAgg); err != nil {
		log.Fatal(err)
	}
	f, t, m, l, w := paralagg.Var("f"), paralagg.Var("t"), paralagg.Var("m"), paralagg.Var("l"), paralagg.Var("w")
	p.Add(paralagg.R(
		paralagg.A("spath", f, t, paralagg.Add(l, w)),
		paralagg.A("spath", f, m, l),
		paralagg.A("edge", m, t, w),
	))

	// Collect a small sample of distances from the first source.
	type pair struct{ node, dist uint64 }
	sample := make(chan pair, 1024)
	res, err := paralagg.Exec(p,
		paralagg.Config{Ranks: *ranks, Subs: *subs, Plan: paralagg.Dynamic},
		func(rk *paralagg.Rank) error {
			if err := rk.LoadShare("edge", len(g.Edges), func(i int, emit func(paralagg.Tuple)) {
				e := g.Edges[i]
				emit(paralagg.Tuple{e.U, e.V, e.W})
			}); err != nil {
				return err
			}
			return rk.LoadShare("spath", len(sources), func(i int, emit func(paralagg.Tuple)) {
				emit(paralagg.Tuple{sources[i], sources[i], 0})
			})
		},
		func(rk *paralagg.Rank) error {
			err := rk.Each("spath", func(tt paralagg.Tuple) {
				if tt[0] == sources[0] {
					select {
					case sample <- pair{tt[1], tt[2]}:
					default:
					}
				}
			})
			return err
		})
	if err != nil {
		log.Fatal(err)
	}
	close(sample)

	var pairs []pair
	for p := range sample {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].dist < pairs[j].dist })
	fmt.Printf("%d shortest-path pairs total; nearest nodes to source %d:\n", res.Counts["spath"], sources[0])
	for i, p := range pairs {
		if i >= 8 {
			break
		}
		fmt.Printf("  dist(%d → %d) = %d\n", sources[0], p.node, p.dist)
	}

	fmt.Printf("\niterations: %d, simulated parallel time: %.2f ms, comm: %.2f MB\n",
		res.Iterations, res.SimSeconds*1e3, float64(res.CommBytes)/1e6)
	fmt.Println("phase breakdown (simulated ms):")
	for _, ph := range []string{"planning", "intra-bucket", "local-join", "all-to-all", "local-agg", "other"} {
		fmt.Printf("  %-14s %8.3f\n", ph, res.PhaseSeconds[ph]*1e3)
	}
}
