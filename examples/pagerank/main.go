// PageRank as iteration-stratified recursive aggregation with the $MSUM
// monotonic aggregate — the RaSQL/DeALS formulation the paper cites as a
// workload recursive aggregation unifies.
//
//	go run ./examples/pagerank [-graph livejournal-sim] [-ranks 16] [-iters 15]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"
	"sync"

	"paralagg"
	"paralagg/internal/graph"
)

func main() {
	gname := flag.String("graph", "livejournal-sim", "catalog graph name")
	ranks := flag.Int("ranks", 16, "simulated MPI ranks")
	iters := flag.Int("iters", 15, "power iterations")
	damping := flag.Float64("damping", 0.85, "damping factor")
	flag.Parse()

	g, err := graph.Load(*gname)
	if err != nil {
		log.Fatal(err)
	}
	deg := g.OutDegrees()
	fmt.Printf("graph: %v\n\n", g)

	// pr(i+1, y, $MSUM((1-d)/N))      ← pr(i, y, r),                    i < K.
	// pr(i+1, y, $MSUM(d · r · inv))  ← pr(i, x, r), edgeinv(x, y, inv), i < K.
	//
	// The iteration counter in the key keeps $MSUM monotone: every key is
	// written in exactly one round, and the runtime's exactly-once delivery
	// makes the sums exact.
	p := paralagg.NewProgram()
	if err := p.DeclareSet("edgeinv", 3, 1); err != nil {
		log.Fatal(err)
	}
	if err := p.DeclareAgg("pr", 2, paralagg.MSumAgg); err != nil {
		log.Fatal(err)
	}
	i, x, y, r, inv := paralagg.Var("i"), paralagg.Var("x"), paralagg.Var("y"), paralagg.Var("r"), paralagg.Var("inv")
	teleport := paralagg.Const(math.Float64bits((1 - *damping) / float64(g.Nodes)))
	damp := paralagg.Const(math.Float64bits(*damping))
	k := paralagg.Const(uint64(*iters))
	p.Add(
		paralagg.R(
			paralagg.A("pr", paralagg.Add(i, paralagg.Const(1)), y, teleport),
			paralagg.A("pr", i, y, r),
		).Where(paralagg.Lt(i, k)),
		paralagg.R(
			paralagg.A("pr", paralagg.Add(i, paralagg.Const(1)), y, paralagg.FMul(damp, paralagg.FMul(r, inv))),
			paralagg.A("pr", i, x, r),
			paralagg.A("edgeinv", x, y, inv),
		).Where(paralagg.Lt(i, k)),
	)

	type nodeRank struct {
		node uint64
		rank float64
	}
	var mu sync.Mutex
	var final []nodeRank
	res, err := paralagg.Exec(p,
		paralagg.Config{Ranks: *ranks, Subs: 1, Plan: paralagg.Dynamic},
		func(rk *paralagg.Rank) error {
			if err := rk.LoadShare("edgeinv", len(g.Edges), func(j int, emit func(paralagg.Tuple)) {
				e := g.Edges[j]
				emit(paralagg.Tuple{e.U, e.V, math.Float64bits(1 / float64(deg[e.U]))})
			}); err != nil {
				return err
			}
			return rk.LoadShare("pr", g.Nodes, func(j int, emit func(paralagg.Tuple)) {
				emit(paralagg.Tuple{0, uint64(j), math.Float64bits(1 / float64(g.Nodes))})
			})
		},
		func(rk *paralagg.Rank) error {
			var local []nodeRank
			if err := rk.Each("pr", func(t paralagg.Tuple) {
				if int(t[0]) == *iters {
					local = append(local, nodeRank{t[1], math.Float64frombits(t[2])})
				}
			}); err != nil {
				return err
			}
			mu.Lock()
			final = append(final, local...)
			mu.Unlock()
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}

	sort.Slice(final, func(a, b int) bool { return final[a].rank > final[b].rank })
	fmt.Printf("top nodes after %d iterations:\n", *iters)
	for j, nr := range final {
		if j >= 10 {
			break
		}
		fmt.Printf("  node %6d: %.6f\n", nr.node, nr.rank)
	}
	fmt.Printf("\ntotal pr tuples %d, simulated parallel time %.2f ms\n",
		res.Counts["pr"], res.SimSeconds*1e3)
}
