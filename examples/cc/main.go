// Connected components via $MIN label propagation (§V-A): every node
// adopts the smallest node id reachable over undirected edges, so each
// component is canonically represented — without materializing the product
// of all node pairs that defeats vanilla Datalog.
//
//	go run ./examples/cc [-graph twitter-sim] [-ranks 32] [-subs 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"

	"paralagg"
	"paralagg/internal/graph"
)

func main() {
	gname := flag.String("graph", "twitter-sim", "catalog graph name")
	ranks := flag.Int("ranks", 32, "simulated MPI ranks")
	subs := flag.Int("subs", 8, "sub-buckets per bucket")
	flag.Parse()

	g, err := graph.Load(*gname)
	if err != nil {
		log.Fatal(err)
	}
	und := g.Undirected()
	fmt.Printf("graph: %v (%d undirected edge tuples)\n\n", g, len(und))

	// cc(n, n)       ← node(n).            (loaded as facts)
	// cc(y, $MIN(z)) ← cc(x, z), edge(x, y).
	p := paralagg.NewProgram()
	if err := p.DeclareSet("edge", 2, 1); err != nil {
		log.Fatal(err)
	}
	if err := p.DeclareAgg("cc", 1, paralagg.MinAgg); err != nil {
		log.Fatal(err)
	}
	x, y, z := paralagg.Var("x"), paralagg.Var("y"), paralagg.Var("z")
	p.Add(paralagg.R(
		paralagg.A("cc", y, z),
		paralagg.A("cc", x, z),
		paralagg.A("edge", x, y),
	))

	var mu sync.Mutex
	sizes := map[uint64]int{} // component representative → size
	res, err := paralagg.Exec(p,
		paralagg.Config{Ranks: *ranks, Subs: *subs, Plan: paralagg.Dynamic},
		func(rk *paralagg.Rank) error {
			if err := rk.LoadShare("edge", len(und), func(i int, emit func(paralagg.Tuple)) {
				emit(paralagg.Tuple{und[i].U, und[i].V})
			}); err != nil {
				return err
			}
			return rk.LoadShare("cc", g.Nodes, func(i int, emit func(paralagg.Tuple)) {
				emit(paralagg.Tuple{uint64(i), uint64(i)})
			})
		},
		func(rk *paralagg.Rank) error {
			local := map[uint64]int{}
			if err := rk.Each("cc", func(t paralagg.Tuple) { local[t[1]]++ }); err != nil {
				return err
			}
			mu.Lock()
			for rep, n := range local {
				sizes[rep] += n
			}
			mu.Unlock()
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}

	type comp struct {
		rep  uint64
		size int
	}
	var comps []comp
	for rep, n := range sizes {
		comps = append(comps, comp{rep, n})
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].size > comps[j].size })
	fmt.Printf("%d components over %d nodes; largest:\n", len(comps), res.Counts["cc"])
	for i, c := range comps {
		if i >= 5 {
			break
		}
		fmt.Printf("  representative %6d: %6d nodes\n", c.rep, c.size)
	}
	fmt.Printf("\niterations: %d, simulated parallel time: %.2f ms\n",
		res.Iterations, res.SimSeconds*1e3)
}
