// Datalog frontend: the same connected-components query as examples/cc, but
// written as program text and compiled with paralagg.ParseProgram — the
// declarative workflow the paper's library is built for. Also prints the
// compiled plan (strata, join keys, derived indexes).
//
//	go run ./examples/datalog [-graph flickr-sim] [-ranks 16]
package main

import (
	"flag"
	"fmt"
	"log"

	"paralagg"
	"paralagg/internal/graph"
)

const program = `
% connected components by $MIN label propagation (paper section V-A)
.set edge 2 key=1
.agg cc 1 min

cc(Y, Z) :- cc(X, Z), edge(X, Y).
`

func main() {
	gname := flag.String("graph", "flickr-sim", "catalog graph name")
	ranks := flag.Int("ranks", 16, "simulated MPI ranks")
	flag.Parse()

	g, err := graph.Load(*gname)
	if err != nil {
		log.Fatal(err)
	}
	und := g.Undirected()

	p, err := paralagg.ParseProgram(program)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := p.Explain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled plan:")
	fmt.Println(plan)

	res, err := paralagg.Exec(p, paralagg.Config{Ranks: *ranks, Subs: 8},
		func(rk *paralagg.Rank) error {
			if err := rk.LoadShare("edge", len(und), func(i int, emit func(paralagg.Tuple)) {
				emit(paralagg.Tuple{und[i].U, und[i].V})
			}); err != nil {
				return err
			}
			return rk.LoadShare("cc", g.Nodes, func(i int, emit func(paralagg.Tuple)) {
				emit(paralagg.Tuple{uint64(i), uint64(i)})
			})
		}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("labeled %d nodes in %d iterations (simulated %.2f ms)\n",
		res.Counts["cc"], res.Iterations, res.SimSeconds*1e3)
}
