// Longest shortest path — the §III-A example of why stratification matters
// for recursive aggregates: copying shortest paths into SpNorm inside the
// SSSP fixpoint would "leak" every transient path length; running the copy
// and the $MAX in a second stratum moves only converged values.
//
//	go run ./examples/lsp [-graph wiki-sim] [-ranks 16] [-sources 3]
package main

import (
	"flag"
	"fmt"
	"log"

	"paralagg"
	"paralagg/internal/graph"
)

func main() {
	gname := flag.String("graph", "wiki-sim", "catalog graph name")
	ranks := flag.Int("ranks", 16, "simulated MPI ranks")
	nsources := flag.Int("sources", 3, "SSSP sources")
	flag.Parse()

	g, err := graph.Load(*gname)
	if err != nil {
		log.Fatal(err)
	}
	sources := g.Sources(*nsources, 5)
	fmt.Printf("graph: %v\nsources: %v\n\n", g, sources)

	// Stratum 1 (recursive):  Spath(f, t, $MIN(l+w)) ← Spath(f, m, l), Edge(m, t, w).
	// Stratum 2 (derived):    SpNorm(f, t, v) ← Spath(f, t, v).
	//                         Lsp(0, $MAX(v)) ← SpNorm(_, _, v).
	p := paralagg.NewProgram()
	for _, decl := range []func() error{
		func() error { return p.DeclareSet("edge", 3, 1) },
		func() error { return p.DeclareAgg("spath", 2, paralagg.MinAgg) },
		func() error { return p.DeclareSet("spnorm", 3, 1) },
		func() error { return p.DeclareAgg("lsp", 1, paralagg.MaxAgg) },
	} {
		if err := decl(); err != nil {
			log.Fatal(err)
		}
	}
	f, t, m, l, w, v := paralagg.Var("f"), paralagg.Var("t"), paralagg.Var("m"),
		paralagg.Var("l"), paralagg.Var("w"), paralagg.Var("v")
	p.Add(
		paralagg.R(paralagg.A("spath", f, t, paralagg.Add(l, w)),
			paralagg.A("spath", f, m, l), paralagg.A("edge", m, t, w)),
		paralagg.R(paralagg.A("spnorm", f, t, v), paralagg.A("spath", f, t, v)),
		paralagg.R(paralagg.A("lsp", paralagg.Const(0), v), paralagg.A("spnorm", f, t, v)),
	)

	var lsp uint64
	res, err := paralagg.Exec(p,
		paralagg.Config{Ranks: *ranks, Subs: 1, Plan: paralagg.Dynamic},
		func(rk *paralagg.Rank) error {
			if err := rk.LoadShare("edge", len(g.Edges), func(i int, emit func(paralagg.Tuple)) {
				e := g.Edges[i]
				emit(paralagg.Tuple{e.U, e.V, e.W})
			}); err != nil {
				return err
			}
			return rk.LoadShare("spath", len(sources), func(i int, emit func(paralagg.Tuple)) {
				emit(paralagg.Tuple{sources[i], sources[i], 0})
			})
		},
		func(rk *paralagg.Rank) error {
			var local uint64
			if err := rk.Each("lsp", func(tt paralagg.Tuple) { local = tt[1] }); err != nil {
				return err
			}
			g := rk.Reduce(local, paralagg.OpMax)
			if rk.ID() == 0 {
				lsp = g
			}
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shortest-path pairs: %d (spnorm copies: %d — no transient leak)\n",
		res.Counts["spath"], res.Counts["spnorm"])
	fmt.Printf("longest shortest path from the selected sources: %d\n", lsp)
	fmt.Printf("strata: %v iterations, simulated parallel time %.2f ms\n",
		res.StratumIters, res.SimSeconds*1e3)
}
