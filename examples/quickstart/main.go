// Quickstart: declare and run a recursive query with the paralagg public
// API — transitive closure over a small directed graph, the "hello world"
// of Datalog (§II-A of the paper).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"paralagg"
)

func main() {
	// A small graph: a chain 0→1→2→3 plus a shortcut 1→3 and an island
	// 7→8.
	edges := [][2]uint64{{0, 1}, {1, 2}, {2, 3}, {1, 3}, {7, 8}}

	// Declare relations: edge and path are plain set-semantics relations
	// of arity 2, indexed on their first column.
	p := paralagg.NewProgram()
	if err := p.DeclareSet("edge", 2, 1); err != nil {
		log.Fatal(err)
	}
	if err := p.DeclareSet("path", 2, 1); err != nil {
		log.Fatal(err)
	}

	// The two Horn clauses of transitive closure:
	//   path(x, y) ← edge(x, y).
	//   path(x, z) ← path(x, y), edge(y, z).
	x, y, z := paralagg.Var("x"), paralagg.Var("y"), paralagg.Var("z")
	p.Add(
		paralagg.R(paralagg.A("path", x, y), paralagg.A("edge", x, y)),
		paralagg.R(paralagg.A("path", x, z), paralagg.A("path", x, y), paralagg.A("edge", y, z)),
	)

	// Execute on 4 simulated MPI ranks. The load callback runs on every
	// rank; LoadShare splits the facts deterministically.
	res, err := paralagg.Exec(p, paralagg.Config{Ranks: 4},
		func(rk *paralagg.Rank) error {
			return rk.LoadShare("edge", len(edges), func(i int, emit func(paralagg.Tuple)) {
				emit(paralagg.Tuple{edges[i][0], edges[i][1]})
			})
		},
		func(rk *paralagg.Rank) error {
			// Each rank prints its own shard of the answer.
			return rk.Each("path", func(t paralagg.Tuple) {
				fmt.Printf("rank %d: path(%d, %d)\n", rk.ID(), t[0], t[1])
			})
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d path tuples in %d iterations (simulated parallel time %.3f ms)\n",
		res.Counts["path"], res.Iterations, res.SimSeconds*1e3)
}
