// Package paralagg is a Go reproduction of PARALAGG, the
// communication-avoiding recursive-aggregation system of Sun, Kumar,
// Gilray, and Micinski (CLUSTER 2023). It lets you declare relational-
// algebra programs with recursive aggregates — SSSP, connected components,
// PageRank, transitive closure — and executes them with semi-naïve
// evaluation over a simulated MPI runtime: ranks are goroutines, relations
// are distributed by bucket/sub-bucket double hashing, joins use
// per-iteration dynamic layout planning (the paper's Algorithm 1), and
// aggregation is fused with deduplication so that it adds no communication.
//
// A minimal program:
//
//	p := paralagg.NewProgram()
//	p.DeclareSet("edge", 2, 1)
//	p.DeclareAgg("cc", 1, paralagg.MinAgg)
//	p.Add(
//	    paralagg.R(paralagg.A("cc", paralagg.Var("y"), paralagg.Var("z")),
//	        paralagg.A("cc", paralagg.Var("x"), paralagg.Var("z")),
//	        paralagg.A("edge", paralagg.Var("x"), paralagg.Var("y"))),
//	)
//	res, err := paralagg.Exec(p, paralagg.Config{Ranks: 8}, loadFn, nil)
//
// Exec spawns one goroutine per rank; loadFn runs on every rank to feed
// that rank's share of the base facts, and the returned Result carries
// global relation sizes, iteration counts, and the simulated parallel-time
// report the benchmark harness uses to reproduce the paper's figures.
package paralagg

import (
	"fmt"
	"sort"
	"time"

	"paralagg/internal/core"
	"paralagg/internal/metrics"
	"paralagg/internal/mpi"
	"paralagg/internal/ra"
	"paralagg/internal/relation"
	"paralagg/internal/tuple"
)

// PlanPolicy selects how each join's outer (serialized) relation is chosen.
type PlanPolicy int

// Join-layout policies. Dynamic is the paper's voting algorithm
// (Algorithm 1) and the default; StaticRight reproduces the baseline of the
// paper's Figure 2; AntiDynamic deliberately inverts the vote and exists
// for ablations.
const (
	Dynamic PlanPolicy = iota
	StaticLeft
	StaticRight
	AntiDynamic
)

func (p PlanPolicy) mode() ra.PlanMode {
	switch p {
	case StaticLeft:
		return ra.PlanStaticLeft
	case StaticRight:
		return ra.PlanStaticRight
	case AntiDynamic:
		return ra.PlanAntiDynamic
	}
	return ra.PlanDynamic
}

// Config tunes an execution.
type Config struct {
	// Ranks is the number of simulated MPI ranks (default 4).
	Ranks int
	// Subs is the sub-bucket count per relation: the spatial load-balancing
	// knob (default 1 = off; the paper's balanced runs use 8).
	Subs int
	// SubsFor overrides Subs per relation.
	SubsFor map[string]int
	// Plan is the join-layout policy.
	Plan PlanPolicy
	// MaxIters bounds each stratum's fixpoint (0 = to fixpoint).
	MaxIters int
	// Adaptive enables per-iteration spatial rebalancing: relations whose
	// per-rank tuple counts become skewed double their sub-bucket count on
	// the fly (the "balancing" phase of the paper's Fig. 1).
	Adaptive bool
	// Cost overrides the simulated-time cost model (zero value = default).
	Cost metrics.CostModel

	// CollectiveSchedule selects how collectives route their messages:
	// "flat" (or empty, the default) composes every collective as a
	// gather-to-root + broadcast star; "tree" routes through a
	// topology-aware binomial reduction tree (O(log P) critical path, root
	// traffic cut from O(P) to O(log P) messages); "ring" additionally runs
	// large vector reductions through a ring reduce-scatter/allgather;
	// "auto" starts on the tree and lets the ranks re-vote tree-vs-ring
	// each planning round from the payload sizes they observe. Must be
	// identical on every rank of a distributed world.
	CollectiveSchedule string
	// Topology describes where ranks live relative to each other (host
	// grouping plus optional per-link costs). The tree schedule keeps
	// reduction traffic inside a host before crossing the expensive links,
	// the ring schedule orders its cycle host-by-host, and the kernel's
	// exchange phase meters cross-host traffic against the cost model's
	// surcharges. nil (the default) is a uniform single-host topology. Must
	// describe exactly the world's rank count.
	Topology *Topology

	// Transport runs the execution distributed: this process hosts rank
	// Transport.Self() of a Transport.Size()-rank world over a real wire
	// (internal/transport/tcp provides one). Every participating process
	// must call Exec with the same program, config, and deterministic load;
	// Ranks is ignored in favor of Transport.Size(). The caller owns the
	// transport and closes it after Exec returns. nil (the default) runs
	// every rank in-process.
	Transport Transport

	// Faults injects a deterministic fault schedule into the runtime
	// (testing and chaos experiments). nil runs fault-free.
	Faults *FaultPlan
	// Watchdog, when positive, bounds how long a collective may sit
	// incomplete before the missing rank is declared failed; without it a
	// hung rank deadlocks the world until Go's runtime detector fires.
	Watchdog time.Duration
	// AdaptiveWatchdog replaces the fixed Watchdog deadline with one that
	// tracks the run's own pace: an EWMA of iteration time, multiplied by a
	// safety factor and clamped to [WatchdogFloor, WatchdogCeil]. A genuinely
	// stuck collective converts to a failure within the ceiling, while slow-
	// but-progressing runs never false-positive.
	AdaptiveWatchdog bool
	// WatchdogFloor is the adaptive deadline's lower clamp (0 = 100ms). Set
	// it above any expected single-message stall (injected delays, GC
	// pauses) to keep the tightened deadline honest.
	WatchdogFloor time.Duration
	// WatchdogCeil is the adaptive deadline's upper clamp and its starting
	// value (0 = Watchdog when positive, else 10s).
	WatchdogCeil time.Duration

	// MemBudget, when positive, is the per-rank accounted-memory budget in
	// bytes: each rank samples its resident structures (relation arenas,
	// index trees, scratch, the transport's unacknowledged-frame outbox)
	// once per fixpoint iteration and the world collectively applies a
	// pressure ladder. At 85% of the budget (soft) ranks shed scratch pools
	// and bring the next checkpoint forward; at the budget (hard) the run
	// fails with a structured resource.ErrMemoryBudget (extract it with
	// AsMemoryBudget) that Supervise recovers like a rank death — never an
	// uncontrolled OOM kill. 0 disables accounting. Must be identical on
	// every rank of a distributed world.
	MemBudget int64

	// Integrity turns on online divergence detection: every relation
	// fingerprints its full state, its Δ, and its replicas each iteration
	// with order-independent digests that ride on the convergence agreement
	// (no extra collective round). A digest invariant violation fails every
	// rank with ErrStateDiverged in the same iteration, which Supervise
	// converts into a rollback to the last verified checkpoint. Must be set
	// identically on every rank of a distributed world.
	Integrity bool
	// CheckpointEvery, with Checkpoints set, snapshots every relation each
	// CheckpointEvery fixpoint iterations so a crashed run can be re-Exec'd
	// with Resume. 0 disables checkpointing.
	CheckpointEvery int
	// Checkpoints stores the per-rank snapshots.
	Checkpoints CheckpointSink
	// Resume restarts from the latest checkpoint in Checkpoints instead of
	// running from scratch: completed strata are skipped and the
	// checkpointed stratum continues from its saved iteration. The load
	// callback still runs (relations restore wholesale over loaded facts).
	Resume bool
	// Rejoin re-enters this process as a hot replacement for a crashed rank
	// of a gang that is still running: the rank's own checkpoint restores
	// its shard (no collective agreement — the survivors never tore down)
	// and the fixpoint replays from the checkpoint's iteration, with the
	// survivors absorbing replayed frames as duplicates and retransmitting
	// the lost tail from held-back send history. Requires Transport (the
	// survivors are other processes), Checkpoints, and a transport built
	// with the hot-replacement protocol and the checkpoint's wire marks
	// (RejoinSeeds). Mutually exclusive with Resume.
	Rejoin bool

	// Observer, when set, receives the live event stream: per-iteration
	// events with phase timings, Δ sizes, per-rank tuple counts, plan
	// votes, and communication/transport deltas, plus checkpoint, recovery,
	// and rank-failure events — everything the post-hoc Result reports,
	// streamed while the run is in flight. Implementations must be safe for
	// concurrent use (every rank goroutine emits) and must not retain
	// events past OnEvent (they are pooled; Event.Clone copies).
	//
	// nil (the default) is free: the runtime performs no observability work
	// and no allocations. Observation may add collective operations (the
	// per-rank distribution events allgather), so in a distributed world
	// every process must agree on whether an Observer is attached.
	Observer Observer
}

// Validate rejects incoherent configurations with errors that say how to
// fix them. Exec calls it first, so a bad config fails fast instead of
// silently defaulting or misbehaving mid-run.
func (c Config) Validate() error {
	if c.Ranks < 0 {
		return fmt.Errorf("paralagg: Config.Ranks must be >= 0, got %d (0 means the default of 4)", c.Ranks)
	}
	if c.Transport != nil && c.Ranks != 0 {
		return fmt.Errorf("paralagg: Config.Transport and Config.Ranks are mutually exclusive: the world size is Transport.Size() = %d (leave Ranks zero)", c.Transport.Size())
	}
	if c.Subs < 0 {
		return fmt.Errorf("paralagg: Config.Subs must be >= 0, got %d (0 or 1 disables sub-bucketing)", c.Subs)
	}
	for name, s := range c.SubsFor {
		if s < 0 {
			return fmt.Errorf("paralagg: Config.SubsFor[%q] must be >= 0, got %d", name, s)
		}
	}
	if c.MaxIters < 0 {
		return fmt.Errorf("paralagg: Config.MaxIters must be >= 0, got %d (0 runs to fixpoint)", c.MaxIters)
	}
	if _, err := mpi.ParseScheduleKind(c.CollectiveSchedule); err != nil {
		return fmt.Errorf("paralagg: Config.CollectiveSchedule: %v", err)
	}
	if c.Topology != nil {
		size := c.ranks()
		if c.Transport != nil {
			size = c.Transport.Size()
		}
		if err := c.Topology.Validate(size); err != nil {
			return fmt.Errorf("paralagg: Config.Topology: %v", err)
		}
	}
	if c.Watchdog < 0 {
		return fmt.Errorf("paralagg: Config.Watchdog must be >= 0, got %v (0 disables the watchdog)", c.Watchdog)
	}
	if c.WatchdogFloor < 0 || c.WatchdogCeil < 0 {
		return fmt.Errorf("paralagg: Config.WatchdogFloor/WatchdogCeil must be >= 0, got %v/%v", c.WatchdogFloor, c.WatchdogCeil)
	}
	if !c.AdaptiveWatchdog && (c.WatchdogFloor != 0 || c.WatchdogCeil != 0) {
		return fmt.Errorf("paralagg: Config.WatchdogFloor/WatchdogCeil only apply with Config.AdaptiveWatchdog set")
	}
	if c.WatchdogCeil != 0 && c.WatchdogFloor > c.WatchdogCeil {
		return fmt.Errorf("paralagg: Config.WatchdogFloor %v exceeds WatchdogCeil %v", c.WatchdogFloor, c.WatchdogCeil)
	}
	if c.MemBudget < 0 {
		return fmt.Errorf("paralagg: Config.MemBudget must be >= 0, got %d (0 disables memory accounting)", c.MemBudget)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("paralagg: Config.CheckpointEvery must be >= 0, got %d (0 disables checkpointing)", c.CheckpointEvery)
	}
	if c.CheckpointEvery > 0 && c.Checkpoints == nil {
		return fmt.Errorf("paralagg: Config.CheckpointEvery = %d needs Config.Checkpoints: without a sink there is nowhere to store the snapshots", c.CheckpointEvery)
	}
	if c.Resume && c.Checkpoints == nil {
		return fmt.Errorf("paralagg: Config.Resume needs Config.Checkpoints: there is no sink to restore from")
	}
	if c.Rejoin {
		if c.Resume {
			return fmt.Errorf("paralagg: Config.Rejoin and Config.Resume are mutually exclusive: Rejoin splices into a live gang, Resume restarts a torn-down one")
		}
		if c.Checkpoints == nil {
			return fmt.Errorf("paralagg: Config.Rejoin needs Config.Checkpoints: there is no sink to restore the shard from")
		}
		if c.Transport == nil {
			return fmt.Errorf("paralagg: Config.Rejoin needs Config.Transport: a hot replacement joins surviving processes over a real wire")
		}
	}
	return nil
}

func (c Config) ranks() int {
	if c.Ranks < 1 {
		return 4
	}
	return c.Ranks
}

func (c Config) cost() metrics.CostModel {
	if c.Cost == (metrics.CostModel{}) {
		return metrics.DefaultCostModel
	}
	return c.Cost
}

// Rank is one simulated rank's view of a running program: load facts into
// relations and inspect results. It is only valid inside the callbacks
// passed to Exec.
type Rank struct {
	comm *mpi.Comm
	inst *core.Instance
	// record, when set (serving engine), journals every base fact loaded
	// through this rank so deletions can re-derive from the survivors. A nil
	// tuple registers the relation without a fact, keeping the journal's
	// relation set uniform even for ranks with an empty share.
	record func(rel string, arity int, t tuple.Tuple)
}

// ID returns this rank's index in [0, Size).
func (r *Rank) ID() int { return r.comm.Rank() }

// Size returns the world size.
func (r *Rank) Size() int { return r.comm.Size() }

// relation resolves a declared relation by name. Programs refer to
// relations uniformly on every rank, so an unknown name errors identically
// world-wide and collective discipline is preserved.
func (r *Rank) relation(rel string) (*relation.Relation, error) {
	rl := r.inst.Relation(rel)
	if rl == nil {
		return nil, fmt.Errorf("paralagg: unknown relation %q", rel)
	}
	return rl, nil
}

// Load feeds this rank's share of base facts into a relation (canonical
// column order). Collective: every rank must call it for the same relation
// in the same order.
func (r *Rank) Load(rel string, facts []Tuple) error {
	rl, err := r.relation(rel)
	if err != nil {
		return err
	}
	if r.record != nil {
		r.record(rel, rl.Arity, nil)
	}
	buf := tuple.NewBuffer(rl.Arity, len(facts))
	for _, f := range facts {
		buf.Append(tuple.Tuple(f))
		if r.record != nil {
			r.record(rel, rl.Arity, tuple.Tuple(f))
		}
	}
	return r.inst.Load(rel, buf)
}

// LoadShare splits n generated facts deterministically across ranks and
// loads them. gen must behave identically on every rank; it is called with
// the fact indices owned by this rank.
func (r *Rank) LoadShare(rel string, n int, gen func(i int, emit func(Tuple))) error {
	if r.record == nil {
		return r.inst.LoadShare(rel, n, func(i int, emit func(tuple.Tuple)) {
			gen(i, func(t Tuple) { emit(tuple.Tuple(t)) })
		})
	}
	// Serving path: build the same deterministic stripe Instance.LoadShare
	// uses, journaling each fact as it is emitted.
	rl, err := r.relation(rel)
	if err != nil {
		return err
	}
	r.record(rel, rl.Arity, nil)
	rank, size := r.comm.Rank(), r.comm.Size()
	buf := tuple.NewBuffer(rl.Arity, n/size+1)
	for i := rank; i < n; i += size {
		gen(i, func(t Tuple) {
			buf.Append(tuple.Tuple(t))
			r.record(rel, rl.Arity, tuple.Tuple(t))
		})
	}
	return r.inst.Load(rel, buf)
}

// Count returns the global tuple count of a relation, or an error for an
// unknown relation name (consistent with Load). Collective.
//
// Deprecated: use Query with QuerySpec{Relation: rel, CountOnly: true}.
func (r *Rank) Count(rel string) (uint64, error) {
	qr, err := r.Query(QuerySpec{Relation: rel, CountOnly: true})
	if err != nil {
		return 0, err
	}
	return qr.Count, nil
}

// Each iterates this rank's locally stored result tuples of a relation in
// canonical column order (the accumulator for aggregated relations, the
// canonical index for set relations), or errors for an unknown relation
// name. Rank-local.
//
// Deprecated: use Query (collective, materializes local matches) or
// Engine.Query for serving reads.
func (r *Rank) Each(rel string, fn func(Tuple)) error {
	rl, err := r.relation(rel)
	if err != nil {
		return err
	}
	eachLocal(rl, nil, func(t tuple.Tuple) { fn(Tuple(t)) })
	return nil
}

// Reduce combines one word from every rank. Collective.
func (r *Rank) Reduce(v uint64, op ReduceOp) uint64 {
	return r.comm.Allreduce(v, mpi.ReduceOp(op))
}

// GatherAll collects one word from every rank, indexed by rank. Collective.
func (r *Rank) GatherAll(v uint64) []uint64 { return r.comm.Allgather(v) }

// PerRankCounts returns every rank's local tuple count for a relation
// (Figure 3's distribution data), or an error for an unknown relation name.
// Collective.
//
// Deprecated: use Query with QuerySpec{Relation: rel, CountOnly: true,
// PerRank: true}.
func (r *Rank) PerRankCounts(rel string) ([]int, error) {
	qr, err := r.Query(QuerySpec{Relation: rel, CountOnly: true, PerRank: true})
	if err != nil {
		return nil, err
	}
	return qr.PerRank, nil
}

// ReduceOp mirrors the runtime's reduction operators.
type ReduceOp int

// Reduction operators for Rank.Reduce.
const (
	OpSum ReduceOp = ReduceOp(mpi.OpSum)
	OpMax ReduceOp = ReduceOp(mpi.OpMax)
	OpMin ReduceOp = ReduceOp(mpi.OpMin)
)

// Result summarizes an execution.
type Result struct {
	// Ranks is the world size the program ran on.
	Ranks int
	// StratumIters lists each stratum's iteration count.
	StratumIters []int
	// Iterations sums them.
	Iterations int
	// Counts holds every declared relation's final global size.
	Counts map[string]uint64
	// SimSeconds is the simulated parallel runtime (critical path over
	// ranks under the cost model).
	SimSeconds float64
	// PhaseSeconds breaks SimSeconds down by phase name (rebalance,
	// planning, intra-bucket, local-join, all-to-all, local-agg, other).
	PhaseSeconds map[string]float64
	// IterPhaseSeconds is the per-iteration breakdown (Figure 7's series):
	// IterPhaseSeconds[i][phase].
	IterPhaseSeconds []map[string]float64
	// CommBytes is the total payload moved between ranks.
	CommBytes int64
	// CommMsgs is the total message/collective-lane count.
	CommMsgs int64
	// MemPeakBytes is the maximum accounted memory any rank reached
	// (0 when Config.MemBudget is unset).
	MemPeakBytes int64
}

// Exec instantiates prog on a simulated world, loads facts, runs every
// stratum to fixpoint, and optionally inspects per-rank state. load runs on
// every rank after instantiation (use it to feed facts); inspect, if
// non-nil, runs after the fixpoint completes. Both must perform identical
// sequences of collective operations on every rank.
func Exec(prog *Program, cfg Config, load func(*Rank) error, inspect func(*Rank) error) (*Result, error) {
	e, err := Open(cfg, prog)
	if err != nil {
		return nil, err
	}
	_, res, err := e.apply(nil, Mutation{Load: load}, inspect)
	if err != nil {
		e.Close()
		return nil, err
	}
	if cerr := e.Close(); cerr != nil {
		return nil, cerr
	}
	e.finishReport(res)
	return res, nil
}

// RejoinSeeds reads rank's newest valid checkpoint rank-locally and returns
// the wire frame counters a hot-replacement transport must be seeded with
// before the world is built (internal/transport/tcp Config.InitialSendSeqs
// and InitialRecvSeqs). It fails when the rank holds no valid checkpoint or
// the checkpoint carries no wire marks (the gang was not running the
// replacement protocol when it was saved).
func RejoinSeeds(sink CheckpointSink, rank int) (send, recv []uint64, err error) {
	cp, ok, err := ra.PeekRejoin(sink, rank)
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return nil, nil, ErrNoCheckpoint
	}
	return cp.SendSeqs, cp.RecvSeqs, nil
}

// Summary renders the result compactly.
func (r *Result) Summary() string {
	s := fmt.Sprintf("ranks=%d iters=%d sim=%.4fs commMB=%.2f\n",
		r.Ranks, r.Iterations, r.SimSeconds, float64(r.CommBytes)/1e6)
	var names []string
	for n := range r.Counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s += fmt.Sprintf("  %s: %d tuples\n", n, r.Counts[n])
	}
	return s
}
