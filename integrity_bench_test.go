package paralagg_test

// Integrity overhead benchmarks: identical SSSP fixpoints with online
// divergence detection off and on. The pairs quantify what the
// fingerprinting layer costs — per-tuple splitmix64 digests over the full
// relation state every iteration, ridden on the convergence Allreduce —
// which the design budgets at <= 5% end-to-end on the SSSP bench.
//
// Two regimes:
//   - Wiki16/Twitter32 are the paper-scale SSSP bench configurations
//     (bench_test.go); iterations are join-dominated and the digest scan
//     disappears into the noise. These carry the <= 5% acceptance budget.
//   - Grid1/Grid4 is the hot-path micro grid (hotpath_bench_test.go): ~300µs
//     iterations over a tiny graph, the adversarial ratio of state scanned
//     to work done. It bounds the constant factor, not the budget.
//
// allocs/op must match within each pair modulo one-time digest scratch: the
// steady-state digest path allocates nothing (pinned by
// TestSteadyStateIterationAllocFreeIntegrity). BENCH_integrity.json tracks
// the trajectory (`make bench-integrity`).

import (
	"testing"

	"paralagg"
	"paralagg/internal/queries"
)

func benchIntegrityGrid(b *testing.B, ranks int, integrity bool) {
	g := hotpathGraph()
	sources := []uint64{0, 5}
	cfg := paralagg.Config{Ranks: ranks, Subs: 2, Plan: paralagg.Dynamic, Integrity: integrity}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := queries.RunSSSP(g, sources, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchIntegrityScale(b *testing.B, gname string, ranks int, integrity bool) {
	g := loadGraph(b, gname)
	sources := g.Sources(5, 1)
	cfg := paralagg.Config{Ranks: ranks, Subs: 8, Plan: paralagg.Dynamic, Integrity: integrity}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := queries.RunSSSP(g, sources, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntegrityOffSSSPWiki16(b *testing.B) { benchIntegrityScale(b, "wiki-sim", 16, false) }
func BenchmarkIntegrityOnSSSPWiki16(b *testing.B)  { benchIntegrityScale(b, "wiki-sim", 16, true) }
func BenchmarkIntegrityOffSSSPTwitter32(b *testing.B) {
	benchIntegrityScale(b, "twitter-sim", 32, false)
}
func BenchmarkIntegrityOnSSSPTwitter32(b *testing.B) {
	benchIntegrityScale(b, "twitter-sim", 32, true)
}
func BenchmarkIntegrityOffSSSPGrid1(b *testing.B) { benchIntegrityGrid(b, 1, false) }
func BenchmarkIntegrityOnSSSPGrid1(b *testing.B)  { benchIntegrityGrid(b, 1, true) }
func BenchmarkIntegrityOffSSSPGrid4(b *testing.B) { benchIntegrityGrid(b, 4, false) }
func BenchmarkIntegrityOnSSSPGrid4(b *testing.B)  { benchIntegrityGrid(b, 4, true) }
