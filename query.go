package paralagg

import (
	"context"
	"fmt"
	"sort"

	"paralagg/internal/relation"
	"paralagg/internal/tuple"
)

// QuerySpec describes one point query against converged relations. The zero
// value of each option is the neutral default, so specs read as option
// structs: set only what the query needs.
type QuerySpec struct {
	// Relation names the relation to read.
	Relation string
	// Key filters tuples whose canonical-order prefix equals Key. For an
	// aggregated relation a Key covering the full independent prefix is an
	// exact O(1) arena lookup (the serving fast path: dist(src,dst),
	// component(v)); shorter prefixes scan. Empty matches every tuple.
	Key []Value
	// Limit, when positive, returns only the top Limit matches ordered by
	// the OrderBy column (top-k). 0 returns all matches.
	Limit int
	// OrderBy is the canonical column index top-k orders by (default 0).
	OrderBy int
	// Desc reverses the top-k order (largest values first).
	Desc bool
	// CountOnly skips materializing tuples: only Count (and Found) are set.
	// With an empty Key this is the O(1) size read.
	CountOnly bool
	// PerRank additionally reports every rank's local tuple count for the
	// relation (Figure 3's distribution data). Implies CountOnly semantics
	// for the extra field only — Tuples are still returned unless CountOnly
	// is also set.
	PerRank bool
}

// QueryResult carries a query's answer.
type QueryResult struct {
	// Relation echoes the queried relation.
	Relation string
	// Found reports whether any tuple matched.
	Found bool
	// Value holds the dependent columns of an exact aggregated lookup
	// (e.g. the distance for dist(src,dst)); nil otherwise.
	Value []Value
	// Tuples holds the matching tuples in canonical column order (all
	// matches, or the top Limit under OrderBy). Omitted when CountOnly.
	Tuples []Tuple
	// Count is the number of matching tuples (before Limit truncation).
	Count uint64
	// PerRank, when requested, holds every rank's local tuple count.
	PerRank []int
}

// Query answers a point query from the resident converged state. It never
// runs a fixpoint and never performs collective communication: exact
// aggregated lookups are O(1) arena probes on the owning rank's shard, prefix
// scans walk only the matching index range. Queries run concurrently with
// each other and are excluded only while a mutation batch is in flight.
//
// On an in-process world the engine sees every rank's shard, so answers are
// global. A distributed engine answers from this process's shard only.
func (e *Engine) Query(ctx context.Context, spec QuerySpec) (QueryResult, error) {
	var qr QueryResult
	if ctx != nil {
		select {
		case <-ctx.Done():
			return qr, ctx.Err()
		default:
		}
	}
	if _, closed, broken, runErr := e.state(); closed {
		return qr, fmt.Errorf("paralagg: Query on a closed engine")
	} else if broken {
		return qr, runErr
	}
	e.qmu.RLock()
	defer e.qmu.RUnlock()

	qr.Relation = spec.Relation
	rels := make([]*relation.Relation, len(e.insts))
	for i, inst := range e.insts {
		rl := inst.Relation(spec.Relation)
		if rl == nil {
			return qr, fmt.Errorf("paralagg: unknown relation %q", spec.Relation)
		}
		rels[i] = rl
	}
	if err := validateSpec(spec, rels[0].Arity); err != nil {
		return qr, err
	}
	defer e.queries.Add(1)

	if spec.PerRank {
		qr.PerRank = make([]int, 0, len(rels))
		for _, rl := range rels {
			qr.PerRank = append(qr.PerRank, rl.LocalFullCount())
		}
	}

	// Exact aggregated lookup: the full independent key owns exactly one
	// arena slot on one rank — probe each shard until it answers.
	if rels[0].Agg != nil && len(spec.Key) == rels[0].Indep {
		for _, rl := range rels {
			if v, ok := rl.Lookup(tuple.Tuple(spec.Key)); ok {
				qr.Found = true
				qr.Count = 1
				qr.Value = append([]Value(nil), v...)
				if !spec.CountOnly {
					t := make(Tuple, 0, rl.Arity)
					t = append(t, spec.Key...)
					t = append(t, v...)
					qr.Tuples = []Tuple{t}
				}
				return qr, nil
			}
		}
		return qr, nil
	}

	// O(1) size read: no key, no tuples wanted.
	if spec.CountOnly && len(spec.Key) == 0 {
		for _, rl := range rels {
			qr.Count += uint64(rl.LocalFullCount())
		}
		qr.Found = qr.Count > 0
		return qr, nil
	}

	// Prefix scan across shards.
	for _, rl := range rels {
		eachLocal(rl, tuple.Tuple(spec.Key), func(t tuple.Tuple) {
			qr.Count++
			if !spec.CountOnly {
				qr.Tuples = append(qr.Tuples, append(Tuple(nil), t...))
			}
		})
	}
	qr.Found = qr.Count > 0
	finishTuples(&qr, spec)
	return qr, nil
}

// Query answers a point query from this rank's view of the program. Unlike
// Engine.Query it is collective — Count and PerRank aggregate over the world
// (every rank must issue identical Query calls in the same order) — while
// Tuples holds only this rank's local matches. It is the typed surface the
// deprecated Count/Each/PerRankCounts accessors delegate to.
func (r *Rank) Query(spec QuerySpec) (QueryResult, error) {
	var qr QueryResult
	rl, err := r.relation(spec.Relation)
	if err != nil {
		return qr, err
	}
	if err := validateSpec(spec, rl.Arity); err != nil {
		return qr, err
	}
	qr.Relation = spec.Relation
	if spec.PerRank {
		qr.PerRank = rl.PerRankCounts()
	}
	if spec.CountOnly && len(spec.Key) == 0 {
		qr.Count = rl.GlobalFullCount()
		qr.Found = qr.Count > 0
		return qr, nil
	}
	local := uint64(0)
	eachLocal(rl, tuple.Tuple(spec.Key), func(t tuple.Tuple) {
		local++
		if !spec.CountOnly {
			qr.Tuples = append(qr.Tuples, append(Tuple(nil), t...))
		}
	})
	qr.Count = r.Reduce(local, OpSum)
	qr.Found = qr.Count > 0
	finishTuples(&qr, spec)
	return qr, nil
}

// validateSpec rejects malformed specs with the same error on every caller.
func validateSpec(spec QuerySpec, arity int) error {
	if len(spec.Key) > arity {
		return fmt.Errorf("paralagg: query key has %d columns but relation %q has arity %d", len(spec.Key), spec.Relation, arity)
	}
	if spec.Limit < 0 {
		return fmt.Errorf("paralagg: QuerySpec.Limit must be >= 0, got %d", spec.Limit)
	}
	if spec.OrderBy != 0 && (spec.OrderBy < 0 || spec.OrderBy >= arity) {
		return fmt.Errorf("paralagg: QuerySpec.OrderBy %d out of range for relation %q (arity %d)", spec.OrderBy, spec.Relation, arity)
	}
	return nil
}

// finishTuples orders and truncates the collected matches: top-k under
// OrderBy/Desc when Limit is set, else canonical lexicographic order so the
// answer is deterministic across runs.
func finishTuples(qr *QueryResult, spec QuerySpec) {
	if spec.CountOnly || len(qr.Tuples) == 0 {
		return
	}
	if spec.Limit > 0 {
		col := spec.OrderBy
		sort.Slice(qr.Tuples, func(i, j int) bool {
			a, b := qr.Tuples[i][col], qr.Tuples[j][col]
			if a != b {
				if spec.Desc {
					return a > b
				}
				return a < b
			}
			return lexLess(qr.Tuples[i], qr.Tuples[j])
		})
		if len(qr.Tuples) > spec.Limit {
			qr.Tuples = qr.Tuples[:spec.Limit]
		}
		return
	}
	sort.Slice(qr.Tuples, func(i, j int) bool { return lexLess(qr.Tuples[i], qr.Tuples[j]) })
}

func lexLess(a, b Tuple) bool {
	for k := range a {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

// eachLocal walks this shard's stored result tuples matching a canonical
// prefix: the accumulator for aggregated relations, the canonical index for
// sets. Tuples passed to fn may alias internal storage — clone before
// retaining.
func eachLocal(rl *relation.Relation, prefix tuple.Tuple, fn func(tuple.Tuple)) {
	if rl.Agg != nil {
		rl.EachAcc(func(t tuple.Tuple) {
			if len(prefix) > 0 && !hasPrefix(t, prefix) {
				return
			}
			fn(t)
		})
		return
	}
	full := rl.Canonical().Full
	if len(prefix) == 0 {
		full.Ascend(func(t tuple.Tuple) bool {
			fn(t)
			return true
		})
		return
	}
	full.AscendPrefix(prefix, func(t tuple.Tuple) bool {
		fn(t)
		return true
	})
}

func hasPrefix(t, prefix tuple.Tuple) bool {
	if len(prefix) > len(t) {
		return false
	}
	for i, v := range prefix {
		if t[i] != v {
			return false
		}
	}
	return true
}
