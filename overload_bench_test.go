package paralagg_test

// Overload benchmarks: the 4-rank SSSP smoke over a real loopback TCP gang
// at three budget levels, the series BENCH_overload.json tracks
// (`make bench-overload`). Each level reports ns/op plus the overload
// counters as custom metrics (benchjson lands them in `extra`):
//
//   - peak-B/op:  the world's accounted memory high-water mark (compute
//     structures + transport outbox + injected phantom charge),
//   - stalls/op:  credit-based flow-control stalls — Sends that found the
//     per-peer window exhausted and blocked for acks,
//   - shed/op:    soft-pressure responses (world-wide scratch sheds).
//
// The levels: `unlimited` prices pure accounting (a budget too large to
// pressure), `ample` a real but comfortable budget (16× the measured peak),
// and `soft` the same budget with a phantom charge pinning the gang in the
// soft band from iteration 3 on — so the shed-every-iteration ladder
// response is on the timed path. The gang runs with a deliberately small
// send window so flow control, not the kernel's socket buffers, paces the
// exchange.

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"paralagg"
	"paralagg/internal/graph"
	"paralagg/internal/queries"
	"paralagg/internal/transport/tcp"
)

const (
	overloadRanks = 4
	// overloadWindow is small enough that the SSSP exchange exhausts it
	// (stalls/op > 0 proves flow control is on the measured path), large
	// enough that refills — acks ride heartbeats — do not dominate.
	overloadWindow = 4
	// overloadPressureIter matches the chaos suite: every scenario's
	// fixpoint runs clearly past it.
	overloadPressureIter = 3
)

// overloadGraph is sized so the fixpoint runs well past the pressure
// iteration but one gang run stays in the low milliseconds.
func overloadGraph() *graph.Graph {
	return graph.Grid("overload-grid", 12, 12, 8, 11)
}

// overloadCounter tallies pressure-ladder responses across all ranks.
type overloadCounter struct {
	soft, hard atomic.Int64
}

func (o *overloadCounter) OnEvent(e *paralagg.Event) {
	if e.Kind == paralagg.EventMemPressure {
		if e.Name == "hard" {
			o.hard.Add(1)
		} else {
			o.soft.Add(1)
		}
	}
}

// runOverloadGang runs one 4-rank SSSP fixpoint over a fresh loopback TCP
// gang with the given budget and optional phantom charge, returning rank 0's
// Result and the gang's aggregated transport counters.
func runOverloadGang(b *testing.B, g *graph.Graph, budget, phantom int64, obs paralagg.Observer) (*paralagg.Result, paralagg.NetStats) {
	b.Helper()
	addrs := make([]string, overloadRanks)
	lns := make([]net.Listener, overloadRanks)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	trs := make([]*tcp.Transport, overloadRanks)
	for i := range trs {
		tr, err := tcp.New(tcp.Config{
			Rank: i, Peers: addrs, Listener: lns[i],
			// Acks (and with them flow-control credit) ride heartbeats: a
			// fast beacon keeps window refills off the critical path while
			// the miss count keeps the liveness window scheduler-safe.
			HeartbeatEvery:   5 * time.Millisecond,
			HeartbeatMisses:  400,
			ConnectTimeout:   10 * time.Second,
			Seed:             42,
			SendWindow:       overloadWindow,
			SendStallTimeout: 30 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		trs[i] = tr
	}
	cfg := paralagg.Config{
		Subs:             2,
		MemBudget:        budget,
		Observer:         obs,
		AdaptiveWatchdog: true,
		WatchdogCeil:     10 * time.Second,
	}
	if phantom > 0 {
		cfg.Faults = &paralagg.FaultPlan{
			Seed: 1,
			MemPressures: []paralagg.MemPressure{
				{Rank: overloadRanks - 1, Iter: overloadPressureIter, Bytes: phantom},
			},
		}
	}
	results := make([]*paralagg.Result, overloadRanks)
	errs := make([]error, overloadRanks)
	var wg sync.WaitGroup
	for i, tr := range trs {
		wg.Add(1)
		go func(i int, tr *tcp.Transport) {
			defer wg.Done()
			c := cfg
			c.Transport = tr
			results[i], errs[i] = paralagg.Exec(queries.SSSPProgram(), c, func(rk *paralagg.Rank) error {
				return queries.LoadSSSP(rk, g, []uint64{0, 5})
			}, nil)
		}(i, tr)
	}
	wg.Wait()
	var net paralagg.NetStats
	for _, tr := range trs {
		net = net.Add(tr.Net())
		tr.Close()
	}
	for rank, err := range errs {
		if err != nil {
			b.Fatalf("gang rank %d: %v", rank, err)
		}
	}
	return results[0], net
}

func benchOverload(b *testing.B, level string) {
	g := overloadGraph()
	// One probe run with an unlimited budget fixes the workload's real
	// accounted peak; the budgeted levels derive from it.
	probe, _ := runOverloadGang(b, g, 1<<40, 0, nil)
	if probe.MemPeakBytes <= 0 {
		b.Fatal("budget probe recorded no accounted memory")
	}
	if probe.Iterations <= overloadPressureIter {
		b.Fatalf("fixpoint ran only %d iterations, pressure at %d would never fire",
			probe.Iterations, overloadPressureIter)
	}
	var budget, phantom int64
	switch level {
	case "unlimited":
		budget = 1 << 40
	case "ample":
		budget = 16 * probe.MemPeakBytes
	case "soft":
		// The phantom alone (14/16 = 87.5% of budget) pins the gang in the
		// soft band; real usage adds at most ~1/16 more, never reaching hard.
		budget = 16 * probe.MemPeakBytes
		phantom = budget / 16 * 14
	default:
		b.Fatalf("unknown overload level %q", level)
	}
	obs := &overloadCounter{}
	var peakBytes, stalls int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, net := runOverloadGang(b, g, budget, phantom, obs)
		if res.MemPeakBytes > peakBytes {
			peakBytes = res.MemPeakBytes
		}
		stalls += net.ThrottleStalls
	}
	b.StopTimer()
	if hard := obs.hard.Load(); hard != 0 {
		b.Fatalf("%d hard-pressure responses fired — the %q level must stay under budget", hard, level)
	}
	if phantom > 0 && obs.soft.Load() == 0 {
		b.Fatal("soft-band phantom charge raised no shed response")
	}
	b.ReportMetric(float64(peakBytes), "peak-B/op")
	b.ReportMetric(float64(stalls)/float64(b.N), "stalls/op")
	b.ReportMetric(float64(obs.soft.Load())/float64(b.N), "shed/op")
}

func BenchmarkOverloadSSSPGang4Unlimited(b *testing.B) { benchOverload(b, "unlimited") }
func BenchmarkOverloadSSSPGang4Ample(b *testing.B)     { benchOverload(b, "ample") }
func BenchmarkOverloadSSSPGang4Soft(b *testing.B)      { benchOverload(b, "soft") }
