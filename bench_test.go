package paralagg_test

// One benchmark per table and figure of the paper's evaluation. Each runs a
// representative point of the corresponding experiment and reports the
// simulated parallel time as sim-ms/op next to the usual wall-clock ns/op;
// `go test -bench=. -benchmem` regenerates the full set. The wider sweeps
// behind each figure live in cmd/experiments.

import (
	"testing"
	"time"

	"paralagg"
	"paralagg/internal/baseline"
	"paralagg/internal/graph"
	"paralagg/internal/metrics"
	"paralagg/internal/queries"
)

func loadGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	g, err := graph.Load(name)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func reportSim(b *testing.B, sim float64) {
	b.ReportMetric(sim*1e3, "sim-ms/op")
}

// --- Table I: single-node comparison ---

func benchTable1(b *testing.B, tool, query string) {
	g := loadGraph(b, "livejournal-sim")
	sources := g.Sources(5, 3)
	const ranks = 16
	var sim float64
	for i := 0; i < b.N; i++ {
		switch tool {
		case "paralagg":
			cfg := paralagg.Config{Ranks: ranks, Subs: 8, Plan: paralagg.Dynamic}
			var res *paralagg.Result
			var err error
			if query == "sssp" {
				res, err = queries.RunSSSP(g, sources, cfg)
			} else {
				res, err = queries.RunCC(g, cfg)
			}
			if err != nil {
				b.Fatal(err)
			}
			sim = res.SimSeconds
		default:
			sys := baseline.RaSQLSim
			if tool == "socialite" {
				sys = baseline.SociaLiteSim
			}
			var res *baseline.Result
			var err error
			if query == "sssp" {
				res, err = baseline.RunSSSP(sys, g, sources, ranks)
			} else {
				res, err = baseline.RunCC(sys, g, ranks)
			}
			if err != nil {
				b.Fatal(err)
			}
			sim = res.SimSeconds
		}
	}
	reportSim(b, sim)
}

func BenchmarkTable1SSSPParalagg(b *testing.B)  { benchTable1(b, "paralagg", "sssp") }
func BenchmarkTable1SSSPRaSQLSim(b *testing.B)  { benchTable1(b, "rasql", "sssp") }
func BenchmarkTable1SSSPSociaLite(b *testing.B) { benchTable1(b, "socialite", "sssp") }
func BenchmarkTable1CCParalagg(b *testing.B)    { benchTable1(b, "paralagg", "cc") }
func BenchmarkTable1CCRaSQLSim(b *testing.B)    { benchTable1(b, "rasql", "cc") }
func BenchmarkTable1CCSociaLite(b *testing.B)   { benchTable1(b, "socialite", "cc") }

// --- Table II: medium-scale graphs ---

func benchTable2(b *testing.B, gname, query string, ranks int) {
	g := loadGraph(b, gname)
	sources := g.Sources(10, 4)
	cfg := paralagg.Config{Ranks: ranks, Subs: 8, Plan: paralagg.Dynamic}
	var sim float64
	for i := 0; i < b.N; i++ {
		var res *paralagg.Result
		var err error
		if query == "sssp" {
			res, err = queries.RunSSSP(g, sources, cfg)
		} else {
			res, err = queries.RunCC(g, cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
		sim = res.SimSeconds
	}
	reportSim(b, sim)
}

func BenchmarkTable2SSSPFlickr16(b *testing.B)  { benchTable2(b, "flickr-sim", "sssp", 16) }
func BenchmarkTable2SSSPFlickr32(b *testing.B)  { benchTable2(b, "flickr-sim", "sssp", 32) }
func BenchmarkTable2CCFlickr16(b *testing.B)    { benchTable2(b, "flickr-sim", "cc", 16) }
func BenchmarkTable2CCFlickr32(b *testing.B)    { benchTable2(b, "flickr-sim", "cc", 32) }
func BenchmarkTable2SSSPWikiSim16(b *testing.B) { benchTable2(b, "wiki-sim", "sssp", 16) }
func BenchmarkTable2CCWikiSim16(b *testing.B)   { benchTable2(b, "wiki-sim", "cc", 16) }

// --- Figure 2: baseline vs optimized SSSP ---

func benchFig2(b *testing.B, cfg paralagg.Config) {
	g := loadGraph(b, "twitter-sim")
	sources := g.Sources(5, 1)
	var sim float64
	for i := 0; i < b.N; i++ {
		res, err := queries.RunSSSP(g, sources, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sim = res.SimSeconds
	}
	reportSim(b, sim)
}

func BenchmarkFig2Baseline(b *testing.B) {
	benchFig2(b, paralagg.Config{Ranks: 32, Subs: 1, Plan: paralagg.StaticRight})
}

func BenchmarkFig2Optimized(b *testing.B) {
	benchFig2(b, paralagg.Config{Ranks: 32, Subs: 8, Plan: paralagg.Dynamic})
}

// --- Figure 3: tuple distribution ---

func BenchmarkFig3Distribution(b *testing.B) {
	g := loadGraph(b, "twitter-sim")
	var ratio float64
	for i := 0; i < b.N; i++ {
		p := paralagg.NewProgram()
		if err := p.DeclareSet("edge", 3, 1); err != nil {
			b.Fatal(err)
		}
		var counts []int
		_, err := paralagg.Exec(p, paralagg.Config{Ranks: 64, Subs: 8},
			func(rk *paralagg.Rank) error {
				return rk.LoadShare("edge", len(g.Edges), func(j int, emit func(paralagg.Tuple)) {
					e := g.Edges[j]
					emit(paralagg.Tuple{e.U, e.V, e.W})
				})
			},
			func(rk *paralagg.Rank) error {
				per, err := rk.PerRankCounts("edge")
				if err != nil {
					return err
				}
				if rk.ID() == 0 {
					counts = per
				}
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
		ratio = metrics.ImbalanceRatio(counts)
	}
	b.ReportMetric(ratio, "max/min")
}

// --- Figure 4: CC local join with and without sub-buckets ---

func benchFig4(b *testing.B, subs int) {
	g := loadGraph(b, "twitter-sim")
	var joinSec float64
	for i := 0; i < b.N; i++ {
		res, err := queries.RunCC(g, paralagg.Config{Ranks: 64, Subs: subs, Plan: paralagg.Dynamic})
		if err != nil {
			b.Fatal(err)
		}
		joinSec = res.PhaseSeconds["local-join"]
	}
	b.ReportMetric(joinSec*1e3, "join-sim-ms/op")
}

func BenchmarkFig4CCOneSubBucket(b *testing.B)    { benchFig4(b, 1) }
func BenchmarkFig4CCEightSubBuckets(b *testing.B) { benchFig4(b, 8) }

// --- Figures 5 and 6: strong scaling points ---

func benchScaling(b *testing.B, query string, ranks int) {
	g := loadGraph(b, "twitter-sim")
	sources := g.Sources(10, 2)
	cfg := paralagg.Config{Ranks: ranks, Subs: 8, Plan: paralagg.Dynamic}
	var sim float64
	for i := 0; i < b.N; i++ {
		var res *paralagg.Result
		var err error
		if query == "sssp" {
			res, err = queries.RunSSSP(g, sources, cfg)
		} else {
			res, err = queries.RunCC(g, cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
		sim = res.SimSeconds
	}
	reportSim(b, sim)
}

func BenchmarkFig5SSSPRanks16(b *testing.B)  { benchScaling(b, "sssp", 16) }
func BenchmarkFig5SSSPRanks64(b *testing.B)  { benchScaling(b, "sssp", 64) }
func BenchmarkFig5SSSPRanks128(b *testing.B) { benchScaling(b, "sssp", 128) }
func BenchmarkFig6CCRanks16(b *testing.B)    { benchScaling(b, "cc", 16) }
func BenchmarkFig6CCRanks64(b *testing.B)    { benchScaling(b, "cc", 64) }
func BenchmarkFig6CCRanks128(b *testing.B)   { benchScaling(b, "cc", 128) }

// --- Figure 7: per-iteration profile ---

func BenchmarkFig7IterationProfile(b *testing.B) {
	g := loadGraph(b, "twitter-sim")
	sources := g.Sources(10, 2)
	var tail float64
	for i := 0; i < b.N; i++ {
		res, err := queries.RunSSSP(g, sources, paralagg.Config{Ranks: 32, Subs: 8, Plan: paralagg.Dynamic})
		if err != nil {
			b.Fatal(err)
		}
		// The long-tail statistic: share of time in the second half of the
		// iterations.
		half := len(res.IterPhaseSeconds) / 2
		var head, rest float64
		for it, row := range res.IterPhaseSeconds {
			for _, v := range row {
				if it < half {
					head += v
				} else {
					rest += v
				}
			}
		}
		tail = rest / (head + rest)
	}
	b.ReportMetric(tail*100, "tail-%")
}

// --- Elastic recovery: checkpoint and restore overhead ---

// benchCheckpointOverhead runs SSSP/twitter-sim with a checkpoint every
// `every` iterations (0 = off) and reports the simulated time spent
// serializing snapshots next to the run's total — the fault-tolerance tax
// as a function of the interval K.
func benchCheckpointOverhead(b *testing.B, every int) {
	g := loadGraph(b, "twitter-sim")
	sources := g.Sources(5, 1)
	var sim, ckpt float64
	for i := 0; i < b.N; i++ {
		cfg := paralagg.Config{Ranks: 32, Subs: 8, Plan: paralagg.Dynamic}
		if every > 0 {
			cfg.CheckpointEvery = every
			cfg.Checkpoints = paralagg.NewMemoryCheckpointSink()
		}
		res, err := queries.RunSSSP(g, sources, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sim = res.SimSeconds
		ckpt = res.PhaseSeconds["checkpoint"]
	}
	reportSim(b, sim)
	b.ReportMetric(ckpt*1e3, "ckpt-sim-ms/op")
}

func BenchmarkCheckpointOff(b *testing.B)    { benchCheckpointOverhead(b, 0) }
func BenchmarkCheckpointEvery8(b *testing.B) { benchCheckpointOverhead(b, 8) }
func BenchmarkCheckpointEvery4(b *testing.B) { benchCheckpointOverhead(b, 4) }
func BenchmarkCheckpointEvery2(b *testing.B) { benchCheckpointOverhead(b, 2) }

// benchRecovery crashes rank (ranks-1) mid-fixpoint and lets the supervisor
// rebuild at restartRanks, reporting the simulated restore cost: the
// same-size path shows up as recovery-sim-ms, the elastic path (restart
// size ≠ 32) as remap-sim-ms.
func benchRecovery(b *testing.B, restartRanks int) {
	g := loadGraph(b, "twitter-sim")
	sources := g.Sources(5, 1)
	var remap, recovery float64
	for i := 0; i < b.N; i++ {
		cfg := paralagg.SuperviseConfig{
			Config: paralagg.Config{
				Ranks: 32, Subs: 8, Plan: paralagg.Dynamic,
				CheckpointEvery: 4,
				Checkpoints:     paralagg.NewMemoryCheckpointSink(),
				Faults: &paralagg.FaultPlan{
					Seed:    1,
					Crashes: []paralagg.Crash{{Rank: 31, Iter: 6, Op: "alltoallv"}},
				},
			},
			RecoveryBackoff: time.Millisecond,
		}
		if restartRanks != 32 {
			cfg.RanksFor = func(restart, prev int, lost []int) int { return restartRanks }
		}
		res, rep, err := paralagg.Supervise(queries.SSSPProgram(), cfg,
			func(rk *paralagg.Rank) error { return queries.LoadSSSP(rk, g, sources) }, nil)
		if err != nil {
			b.Fatal(err)
		}
		if rep.RecoveryAttempts != 1 {
			b.Fatalf("expected 1 recovery, got %d", rep.RecoveryAttempts)
		}
		remap = res.PhaseSeconds["remap"]
		recovery = res.PhaseSeconds["recovery"]
	}
	b.ReportMetric(remap*1e3, "remap-sim-ms/op")
	b.ReportMetric(recovery*1e3, "recovery-sim-ms/op")
}

func BenchmarkRecoverySameSize(b *testing.B) { benchRecovery(b, 32) }
func BenchmarkRecoveryDegraded(b *testing.B) { benchRecovery(b, 31) }
func BenchmarkRecoveryHalved(b *testing.B)   { benchRecovery(b, 16) }

// --- Ablations ---

func BenchmarkAblationJoinDynamic(b *testing.B) {
	benchFig2(b, paralagg.Config{Ranks: 32, Subs: 8, Plan: paralagg.Dynamic})
}

func BenchmarkAblationJoinStaticRight(b *testing.B) {
	benchFig2(b, paralagg.Config{Ranks: 32, Subs: 8, Plan: paralagg.StaticRight})
}

func BenchmarkAblationAggParalagg(b *testing.B) {
	g := loadGraph(b, "flickr-sim")
	sources := g.Sources(5, 1)
	var sim float64
	for i := 0; i < b.N; i++ {
		res, err := queries.RunSSSP(g, sources, paralagg.Config{Ranks: 16, Subs: 1, Plan: paralagg.Dynamic})
		if err != nil {
			b.Fatal(err)
		}
		sim = res.SimSeconds
	}
	reportSim(b, sim)
}

func BenchmarkAblationAggLeaky(b *testing.B) {
	g := loadGraph(b, "flickr-sim")
	sources := g.Sources(5, 1)
	var sim float64
	for i := 0; i < b.N; i++ {
		res, err := baseline.RunSSSP(baseline.RaSQLSim, g, sources, 16)
		if err != nil {
			b.Fatal(err)
		}
		sim = res.SimSeconds
	}
	reportSim(b, sim)
}
