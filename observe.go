package paralagg

import (
	"paralagg/internal/live"
	"paralagg/internal/obs"
	"paralagg/internal/trace"
)

// Live observability surface: Config.Observer receives the runtime's event
// stream while the run is in flight — per-iteration phase timings, Δ sizes,
// per-rank tuple distributions, join-plan votes, communication and
// transport-robustness deltas, checkpoint/recovery activity, and rank
// failures. Two ready-made consumers ship with the package: a Chrome-trace
// recorder (NewTraceRecorder) and a live HTTP metrics server
// (StartLiveServer). TeeObservers combines several.

// Observer receives runtime events (see Config.Observer). Implementations
// must be safe for concurrent use and must not retain events past OnEvent.
type Observer = obs.Observer

// Event is one observability record; its Kind selects which fields are
// meaningful. Events are pooled — Clone one to retain it.
type Event = obs.Event

// EventKind discriminates Event payloads.
type EventKind = obs.Kind

// Event kinds, re-exported for observers that switch on them.
const (
	EventRunStart     = obs.KindRunStart
	EventRunEnd       = obs.KindRunEnd
	EventStratumStart = obs.KindStratumStart
	EventPhase        = obs.KindPhase
	EventPlan         = obs.KindPlan
	EventIteration    = obs.KindIteration
	EventRelation     = obs.KindRelation
	EventCheckpoint   = obs.KindCheckpoint
	EventRecovery     = obs.KindRecovery
	EventRankFailed   = obs.KindRankFailed
	EventMemPressure  = obs.KindMemPressure
	EventCkptDegraded = obs.KindCkptDegraded
)

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = obs.Func

// TeeObservers fans the event stream out to several observers in order;
// nil entries are skipped, and a tee of zero live observers is nil.
func TeeObservers(os ...Observer) Observer { return obs.Tee(os...) }

// TraceRecorder collects the event stream into a Chrome-trace file
// (chrome://tracing / Perfetto): one track per rank with a span for every
// metered phase of every iteration, relation-size counter tracks, and
// instant markers for plans, checkpoints, recoveries, and failures.
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns an empty trace recorder; attach it via
// Config.Observer and call WriteFile after the run (or mid-run — the
// recorder is concurrency-safe).
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// LiveServer serves live counters over HTTP: /metrics (Prometheus text),
// /vars (JSON), and /debug/pprof. It updates from the event stream and
// survives supervised restarts (each attempt re-registers cleanly).
type LiveServer = live.Server

// StartLiveServer listens on addr (port 0 picks a free one) and returns the
// running server; attach it via Config.Observer.
func StartLiveServer(addr string) (*LiveServer, error) { return live.Start(addr) }
